(** Sharded scatter-gather execution: one relation partitioned into K
    shards, each owning its own dataset, R*-tree, buffer pool and
    labelled metrics shard, queried through a scatter-gather executor
    that prunes shards by catalogue bounds {e before touching any
    page} — the way TSseek routes similarity queries to distributed
    time-series partitions.

    {b Partitioning.} The partitioner is deterministic: entry ids are
    split into K contiguous blocks in id order (block [i] holds
    [n / K] entries, the first [n mod K] blocks one more), so the same
    dataset and K always produce the same shards, and the range
    merge — per-shard answer lists concatenated in shard order — comes
    out globally sorted by entry id, exactly as the unsharded
    traversal returns it. [K] is clamped to the cardinality, so no
    shard is ever empty.

    {b Catalogue pruning.} Each shard records the min/max box of its
    feature points (the 2k+2 index dimensions). A query probes every
    box with {!Simq_tsindex.Kindex.range_probe} — the very test the
    R-tree traversal applies to node MBRs — before anything executes.
    Lemma 1 makes the probe conservative: a pruned shard can hold no
    answer, so pruning never changes the result, and a pruned shard
    executes nothing — its tree, buffer pool and per-shard counter
    stay untouched.

    {b Determinism.} Surviving shards fan out over a
    {!Simq_parallel.Pool}, one task per shard; no two tasks share
    mutable state (each touches only its own tree and pool). Answers,
    per-query counters and the merged metric totals are bit-identical
    to the unsharded run of the same query at every K and every domain
    count: range answers by the ordered union above, NN answers by a
    k-way merge of per-shard top-k lists in canonical
    (distance, entry id) order. Answer entries are the {e parent}
    dataset's — physically the entries an unsharded query returns.

    {b Resilience.} The checked entry points decide admission {e per
    shard} (each shard's own catalogue facts and calibration) before
    any shard executes: one rejecting shard rejects the whole query
    with nothing run. A shard that trips the fault layer mid-query
    degrades to its own per-shard scan — degrading that shard only,
    never failing the query; the exact answer still comes back.

    Every query bumps the [simq_shard_queries_total] /
    [simq_shard_fanout_total] / [simq_shard_pruned_total] /
    [simq_shard_degraded_total] counters, and each executed shard its
    [simq_shard_executed_total{shard="i"}] child — all on the
    coordinating domain, after the gather. *)

type t

(** [create ~shards dataset] partitions [dataset]. Each shard gets its
    own backing relation (hence buffer pool), prepared dataset,
    R*-tree over [config] (default {!Simq_tsindex.Feature.default}),
    catalogue box and labelled metrics child; the per-shard builds fan
    out their per-entry work over [pool]. [shards] above the
    cardinality is clamped; [shards < 1] raises [Invalid_argument].

    With [?sketch] every shard additionally builds its own
    {!Simq_sketch} table over its local dataset, and the range/NN
    entry points below thread the shard's funnel into the per-shard
    traversals — exact-mode answers stay bit-identical (Lemma 1 holds
    per shard), only the count of exact distance evaluations drops. *)
val create :
  ?pool:Simq_parallel.Pool.t ->
  ?config:Simq_tsindex.Feature.config ->
  ?max_fill:int ->
  ?sketch:Simq_sketch.config ->
  shards:int ->
  Simq_tsindex.Dataset.t ->
  t

(** [shards t] is the effective shard count K. *)
val shards : t -> int

(** [dataset t] is the parent dataset the answers' entries belong to. *)
val dataset : t -> Simq_tsindex.Dataset.t

(** [bounds t i] is shard [i]'s contiguous global-id block as
    [(lo, hi)], [lo] inclusive, [hi] exclusive. *)
val bounds : t -> int -> int * int

(** [catalogue_box t i] is the min/max box of shard [i]'s feature
    points — what the scatter probes before touching the shard. *)
val catalogue_box : t -> int -> Simq_geometry.Rect.t

(** [shard_index t i] / [shard_dataset t i] expose shard [i]'s own
    index and dataset for inspection and invariant checking (the
    shard's backing relation — its buffer pool — is
    [Dataset.relation (shard_dataset t i)]). *)
val shard_index : t -> int -> Simq_tsindex.Kindex.t

val shard_dataset : t -> int -> Simq_tsindex.Dataset.t

(** What the gather reports about one scatter. *)
type report = {
  shards : int;  (** effective shard count K *)
  fanout : int;  (** shards that executed *)
  pruned : int;  (** shards refused by their catalogue box *)
  degraded : int;  (** executed shards answered by their own scan *)
}

(** [survivors t ?spec ~query ~epsilon] is the catalogue plan of the
    corresponding {!range}: element [i] tells whether shard [i]'s box
    meets the search region (probing reads no page). Argument
    validation raises [Invalid_argument] like {!range}. *)
val survivors :
  ?spec:Simq_tsindex.Spec.t ->
  ?normalise_query:bool ->
  ?mean_window:float ->
  ?std_band:float ->
  t ->
  query:Simq_series.Series.t ->
  epsilon:float ->
  bool array

type range_result = {
  answers : (Simq_tsindex.Dataset.entry * float) list;
      (** parent-dataset entries within ε, globally sorted by id —
          bit-identical to the unsharded traversal's *)
  candidates : int;
      (** summed over executed shards, in shard order; a scan-degraded
          shard contributes its cardinality *)
  node_accesses : int;  (** summed over executed shards (0 for scans) *)
  partial : bool;
      (** some shard's anytime verification ([?anytime]) was cut short
          by its budget: the merged answers are a sound subset. Always
          [false] without [?anytime], and for scan-degraded shards *)
  report : report;
}

(** [range t ?spec ~query ~epsilon] scatters the range query of
    {!Simq_tsindex.Kindex.range} over the surviving shards and gathers
    the ordered union. Side constraints ([mean_window]/[std_band])
    participate in both the probe and the per-shard traversals. With
    [?profile] the gather records a [shard.scatter] node (one
    [shard.i] child per shard: its fate — [pruned], [index] or
    [scan] — pages, candidates and rows) and a [shard.gather] node
    (rows in = per-shard answers, rows out = merged answers), on the
    coordinating domain after the merge, so the recorded structure is
    identical at every domain count.

    When the executor carries sketches ([create ?sketch]) each shard
    funnels its candidates through its own sketch levels first;
    [?approx a] relaxes every shard's funnel to the [(1 - a) epsilon]
    cutoff (validated as in {!Simq_tsindex.Kindex.range}), keeping
    every answer within [(1 - a) epsilon] and returning only true
    answers. *)
val range :
  ?pool:Simq_parallel.Pool.t ->
  ?spec:Simq_tsindex.Spec.t ->
  ?normalise_query:bool ->
  ?mean_window:float ->
  ?std_band:float ->
  ?approx:float ->
  ?profile:Simq_obs.Profile.t ->
  t ->
  query:Simq_series.Series.t ->
  epsilon:float ->
  range_result

(** [range_checked t ?budget ?retry ?admission ~query ~epsilon] is
    {!range} under the fault layer, shard by shard.

    With [?admission], every surviving shard is vetted {e before any
    shard executes} — {!Simq_admission.decide} on the shard's own
    catalogue facts and selectivity histogram (collected lazily, once
    per shard), in shard order, each decision counted in the
    [simq_admission_decisions_total] family and reported to
    [on_decision]. Decisions are pure functions of catalogue metadata,
    the budget and a registry snapshot — identical at every domain
    count. One [Reject] rejects the whole query with the typed
    [Rejected] error and {e nothing executed}: every execution-side
    counter family stays at zero. A [Degrade_to_scan] sends that shard
    (only) straight to its scan.

    Each executing shard runs {!Simq_tsindex.Kindex.range_checked}
    against its own tree with a fresh state of [budget] (limits are
    per shard-attempt, like retries); a shard whose index path fails —
    budget exhausted or transient faults outlasting [retry] — degrades
    to its own {!Simq_tsindex.Seqscan.range_checked} over the shard
    dataset, degrading that shard only. [Error] is returned only when
    a shard's fallback itself fails.

    Sketched executors funnel per shard as in {!range}; each shard's
    funnel levels feed that shard's admission workload
    ([sketch_levels]), so the cost model sees the comparisons the
    funnel saves. [?anytime] lets a shard whose budget dies inside
    exact verification return its sound subset (marked in [partial])
    instead of degrading to the scan; descent exhaustion still
    degrades as before. *)
val range_checked :
  ?pool:Simq_parallel.Pool.t ->
  ?spec:Simq_tsindex.Spec.t ->
  ?budget:Simq_fault.Budget.t ->
  ?retry:Simq_fault.Retry.policy ->
  ?admission:Simq_admission.t ->
  ?on_decision:(Simq_admission.decision -> unit) ->
  ?approx:float ->
  ?anytime:bool ->
  ?profile:Simq_obs.Profile.t ->
  t ->
  query:Simq_series.Series.t ->
  epsilon:float ->
  (range_result, Simq_fault.Error.t) Result.t

type nearest_result = {
  neighbours : (Simq_tsindex.Dataset.entry * float) list;
      (** the k nearest parent-dataset entries in canonical
          (distance, entry id) order *)
  nearest_report : report;  (** NN prunes nothing: fanout = K *)
}

(** [nearest t ?spec ~query ~k] scatters
    {!Simq_tsindex.Kindex.nearest} over every shard (an NN query has
    no radius to prune on until answers exist, so all K execute) and
    k-way-merges the per-shard top-k lists in (distance, entry id)
    order — the same exact answer set as the unsharded traversal, in
    the canonical order the degraded NN path uses. Records the same
    [shard.scatter]/[shard.gather] profile nodes as {!range}. A
    sketched executor passes each shard's {!Simq_sketch.nn_bound} to
    the per-shard traversal — deferred refinement, answers unchanged.
    Raises [Invalid_argument] when [k <= 0] or on a query-length
    mismatch. *)
val nearest :
  ?pool:Simq_parallel.Pool.t ->
  ?spec:Simq_tsindex.Spec.t ->
  ?normalise_query:bool ->
  ?profile:Simq_obs.Profile.t ->
  t ->
  query:Simq_series.Series.t ->
  k:int ->
  nearest_result

(** [nearest_checked t ?budget ?retry ?admission ~query ~k] is
    {!nearest} under the fault layer, with the same per-shard
    contract as {!range_checked}: every shard vetted before any
    executes (the NN workload uses the shard's exact answer fraction
    [k / cardinality] as its selectivity), one [Reject] refusing the
    whole query with nothing run, [Degrade_to_scan] and mid-flight
    index failures degrading that shard (only) to the exact linear
    selection of {!Simq_tsindex.Kindex.nearest_scan}. The merge is
    exact whichever mix of paths answered the shards. The NN funnel
    of a sketched executor dismisses nothing, so the per-shard
    admission workloads carry no sketch discount — decisions are
    identical with and without sketches. *)
val nearest_checked :
  ?pool:Simq_parallel.Pool.t ->
  ?spec:Simq_tsindex.Spec.t ->
  ?budget:Simq_fault.Budget.t ->
  ?retry:Simq_fault.Retry.policy ->
  ?admission:Simq_admission.t ->
  ?on_decision:(Simq_admission.decision -> unit) ->
  ?profile:Simq_obs.Profile.t ->
  t ->
  query:Simq_series.Series.t ->
  k:int ->
  (nearest_result, Simq_fault.Error.t) Result.t
