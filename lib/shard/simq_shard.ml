module Dataset = Simq_tsindex.Dataset
module Kindex = Simq_tsindex.Kindex
module Spec = Simq_tsindex.Spec
module Seqscan = Simq_tsindex.Seqscan
module Planner = Simq_tsindex.Planner
module Feature = Simq_tsindex.Feature
module Relation = Simq_storage.Relation
module Rect = Simq_geometry.Rect
module Rstar = Simq_rtree.Rstar
module Pool = Simq_parallel.Pool
module Budget = Simq_fault.Budget
module Metrics = Simq_obs.Metrics
module Otrace = Simq_obs.Trace
module Profile = Simq_obs.Profile

let m_queries =
  Metrics.counter ~help:"Scatter-gather queries executed over sharded relations"
    "simq_shard_queries_total"

let m_fanout =
  Metrics.counter ~help:"Shards executed by scatter-gather queries"
    "simq_shard_fanout_total"

let m_pruned =
  Metrics.counter
    ~help:"Shards pruned by their catalogue box before touching any page"
    "simq_shard_pruned_total"

let m_degraded =
  Metrics.counter ~help:"Shards answered by their own per-shard scan"
    "simq_shard_degraded_total"

type shard = {
  ordinal : int;
  lo : int;  (* first global id owned, inclusive *)
  hi : int;  (* past the last, exclusive *)
  sdataset : Dataset.t;  (* own relation, hence own buffer pool *)
  sindex : Kindex.t;  (* own R*-tree *)
  box : Rect.t;  (* catalogue: min/max box of the shard's feature points *)
  ssketch : Simq_sketch.t option;  (* own sketch table, over local ids *)
  mutable sstats : Planner.stats option;  (* per-shard calibration, lazy *)
  m_executed : Metrics.counter;  (* this shard's labelled metrics child *)
}

type t = { parent : Dataset.t; parts : shard array }

let create ?pool ?(config = Feature.default) ?(max_fill = 32) ?sketch ~shards
    dataset =
  if shards < 1 then invalid_arg "Simq_shard.create: shards must be >= 1";
  let n = Dataset.cardinality dataset in
  let k = Int.min shards n in
  let entries = Dataset.entries dataset in
  let name = Relation.name (Dataset.relation dataset) in
  let base = n / k and rem = n mod k in
  let mk ordinal =
    let lo = (ordinal * base) + Int.min ordinal rem in
    let width = base + if ordinal < rem then 1 else 0 in
    let series =
      Array.init width (fun i -> entries.(lo + i).Dataset.series)
    in
    let sdataset =
      Dataset.of_series ?pool ~name:(Printf.sprintf "%s/shard%d" name ordinal)
        series
    in
    let sindex = Kindex.build ~config ~max_fill sdataset in
    let box =
      Rect.of_points
        (Array.to_list
           (Array.map (Feature.point config) (Dataset.entries sdataset)))
    in
    {
      ordinal;
      lo;
      hi = lo + width;
      sdataset;
      sindex;
      box;
      ssketch =
        Option.map (fun config -> Simq_sketch.create ~config sdataset) sketch;
      sstats = None;
      m_executed =
        Metrics.counter ~help:"Queries executed against this shard"
          ~labels:[ ("shard", string_of_int ordinal) ]
          "simq_shard_executed_total";
    }
  in
  { parent = dataset; parts = Array.init k mk }

let shards t = Array.length t.parts
let dataset t = t.parent
let bounds t i = (t.parts.(i).lo, t.parts.(i).hi)
let catalogue_box t i = t.parts.(i).box
let shard_index t i = t.parts.(i).sindex
let shard_dataset t i = t.parts.(i).sdataset

type report = { shards : int; fanout : int; pruned : int; degraded : int }

(* Shard ids are local (dense 0..width-1); global id = lo + local. The
   parent entry is returned so answers are physically the entries an
   unsharded query yields. *)
let globalise t s answers =
  List.map
    (fun ((e : Dataset.entry), d) -> (Dataset.get t.parent (s.lo + e.Dataset.id), d))
    answers

let probe_of ?spec ?normalise_query ?mean_window ?std_band t ~query ~epsilon =
  (* Any shard's index carries the config and series length shared by
     all of them; the probe itself is tree-independent. *)
  Kindex.range_probe ?spec ?normalise_query ?mean_window ?std_band
    t.parts.(0).sindex ~query ~epsilon

let survivors ?spec ?normalise_query ?mean_window ?std_band t ~query ~epsilon =
  let probe =
    probe_of ?spec ?normalise_query ?mean_window ?std_band t ~query ~epsilon
  in
  Array.map (fun s -> probe s.box) t.parts

type range_result = {
  answers : (Dataset.entry * float) list;
  candidates : int;
  node_accesses : int;
  partial : bool;
  report : report;
}

(* What the gather learns about one shard of the scatter. *)
type 'a run = {
  r_payload : 'a;
  r_rows : int;  (* per-shard answers before the merge *)
  r_candidates : int;
  r_nodes : int;
  r_scan : bool;  (* answered by the shard's own scan *)
  r_partial : bool;  (* this shard's anytime verification was cut short *)
}

(* The per-shard sketch funnel and NN bound builders: the shard's own
   sketch table over its own (local-id) dataset, or nothing when the
   executor was built without sketches. *)
let sketch_spec spec = Option.value spec ~default:Spec.Identity

let shard_funnel ?spec s =
  Option.map
    (fun sk query -> Simq_sketch.funnel sk ~spec:(sketch_spec spec) ~query)
    s.ssketch

let shard_nn_bound ?spec s =
  Option.map
    (fun sk query -> Simq_sketch.nn_bound sk ~spec:(sketch_spec spec) ~query)
    s.ssketch

(* Metrics and profile for one finished scatter, on the coordinating
   domain after the merge (deterministic at every domain count). *)
let finish ?profile t ~op ~(runs : _ run option array) ~rows_out =
  let k = Array.length t.parts in
  let fanout = ref 0 and degraded = ref 0 and rows_in = ref 0 in
  Array.iter
    (fun r ->
      match r with
      | None -> ()
      | Some r ->
        incr fanout;
        rows_in := !rows_in + r.r_rows;
        if r.r_scan then incr degraded)
    runs;
  let report =
    { shards = k; fanout = !fanout; pruned = k - !fanout; degraded = !degraded }
  in
  Metrics.incr m_queries;
  Metrics.add m_fanout report.fanout;
  Metrics.add m_pruned report.pruned;
  Metrics.add m_degraded report.degraded;
  Array.iteri
    (fun i r -> if Option.is_some r then Metrics.incr t.parts.(i).m_executed)
    runs;
  (match profile with
  | None -> ()
  | Some _ ->
    let ps = Profile.enter profile "shard.scatter" in
    Profile.set_detail ps
      (Printf.sprintf "%s shards=%d fanout=%d pruned=%d degraded=%d" op
         report.shards report.fanout report.pruned report.degraded);
    Array.iteri
      (fun i r ->
        let pc = Profile.enter profile (Printf.sprintf "shard.%d" i) in
        (match r with
        | None -> Profile.set_detail pc "pruned"
        | Some r ->
          Profile.set_detail pc (if r.r_scan then "scan" else "index");
          Profile.add_pages pc r.r_nodes;
          Profile.add_candidates pc r.r_candidates;
          Profile.add_rows_out pc r.r_rows);
        Profile.leave profile pc)
      runs;
    Profile.leave profile ps;
    let pg = Profile.enter profile "shard.gather" in
    Profile.set_detail pg op;
    Profile.add_rows_in pg !rows_in;
    Profile.add_rows_out pg rows_out;
    Profile.leave profile pg);
  report

let gather_range ?profile t runs =
  let answers =
    (* Contiguous id blocks in shard order: concatenation is already
       globally sorted by entry id, like the unsharded traversal. *)
    List.concat_map
      (function None -> [] | Some r -> r.r_payload)
      (Array.to_list runs)
  in
  let candidates =
    Array.fold_left
      (fun acc -> function None -> acc | Some r -> acc + r.r_candidates)
      0 runs
  and node_accesses =
    Array.fold_left
      (fun acc -> function None -> acc | Some r -> acc + r.r_nodes)
      0 runs
  in
  let partial =
    Array.exists (function None -> false | Some r -> r.r_partial) runs
  in
  let report = finish ?profile t ~op:"range" ~runs ~rows_out:(List.length answers) in
  { answers; candidates; node_accesses; partial; report }

let range ?pool ?spec ?normalise_query ?mean_window ?std_band ?approx ?profile
    t ~query ~epsilon =
  let probe =
    probe_of ?spec ?normalise_query ?mean_window ?std_band t ~query ~epsilon
  in
  let keep = Array.map (fun s -> probe s.box) t.parts in
  Otrace.with_span "shard.scatter" @@ fun () ->
  let runs =
    (* One task per surviving shard; a task touches only its own
       shard's tree and buffer pool, so tasks share no mutable state
       and the per-shard results are position-stable. *)
    Pool.map_array ?pool
      (fun s ->
        if not keep.(s.ordinal) then None
        else begin
          let r =
            Kindex.range ?spec ?normalise_query ?mean_window ?std_band
              ?sketch:(shard_funnel ?spec s) ?approx s.sindex ~query ~epsilon
          in
          Some
            {
              r_payload = globalise t s r.Kindex.answers;
              r_rows = List.length r.Kindex.answers;
              r_candidates = r.Kindex.candidates;
              r_nodes = r.Kindex.node_accesses;
              r_scan = false;
              r_partial = r.Kindex.partial;
            }
        end)
      t.parts
  in
  gather_range ?profile t runs

(* A shard abandoned by both its index path and its fallback scan: the
   typed error surfaces as the whole query's (deterministically — the
   pool re-raises from the lowest chunk). *)
exception Shard_failed of Simq_fault.Error.t

(* The per-shard range calibration: the shard's own sampled histogram,
   collected at most once (from the coordinating domain, during the
   admission pre-flight). *)
let shard_stats s =
  match s.sstats with
  | Some stats -> stats
  | None ->
    let stats = Planner.collect s.sdataset in
    s.sstats <- Some stats;
    stats

let shard_workload s ~selectivity ~sketch_levels =
  {
    Simq_admission.cardinality = Dataset.cardinality s.sdataset;
    pages = Relation.pages (Dataset.relation s.sdataset);
    tree_size = Rstar.size (Kindex.tree s.sindex);
    tree_height = Rstar.height (Kindex.tree s.sindex);
    selectivity;
    sketch_levels;
  }

(* Decide every surviving shard before any of them executes, in shard
   order, each against its own workload description. Returns the first
   rejection, or the per-shard decisions. *)
let preflight ?admission ~budget ~keep ~selectivity ~sketch_levels t =
  match admission with
  | None -> Ok (Array.map (fun _ -> None) t.parts)
  | Some policy ->
    let decisions =
      Array.map
        (fun s ->
          if not keep.(s.ordinal) then None
          else
            Some
              (Simq_admission.decide policy
                 (shard_workload s ~selectivity:(selectivity s)
                    ~sketch_levels:(sketch_levels s))
                 ~prefer:Simq_admission.Index_path ~budget))
        t.parts
    in
    (match
       Array.find_map
         (function Some (Simq_admission.Reject r) -> Some r | _ -> None)
         decisions
     with
    | Some r -> Error (Simq_admission.error_of_reject r)
    | None -> Ok decisions)

let notify_decisions ?on_decision decisions =
  match on_decision with
  | None -> ()
  | Some f -> Array.iter (function None -> () | Some d -> f d) decisions

let range_checked ?pool ?spec ?(budget = Budget.unlimited) ?retry ?admission
    ?on_decision ?approx ?anytime ?profile t ~query ~epsilon =
  let probe = probe_of ?spec t ~query ~epsilon in
  let keep = Array.map (fun s -> probe s.box) t.parts in
  let selectivity s =
    Planner.selectivity (shard_stats s) ~epsilon
  in
  let sketch_levels s =
    if Option.is_some s.ssketch then Simq_sketch.spec_levels (sketch_spec spec)
    else 0
  in
  match preflight ?admission ~budget ~keep ~selectivity ~sketch_levels t with
  | Error e -> Error e
  | Ok decisions ->
    notify_decisions ?on_decision decisions;
    let scan s =
      (* The shard's own degradation path: exact, over the shard's
         dataset and buffer pool, sequential within the shard (the
         scatter already owns the pool's domains). *)
      match
        Seqscan.range_checked ~pool:Pool.sequential ?spec ~budget ?retry
          s.sdataset ~query ~epsilon
      with
      | Ok r ->
        {
          r_payload = globalise t s r.Seqscan.answers;
          r_rows = List.length r.Seqscan.answers;
          r_candidates = Dataset.cardinality s.sdataset;
          r_nodes = 0;
          r_scan = true;
          r_partial = false;
        }
      | Error e -> raise (Shard_failed e)
    in
    let task s =
      if not keep.(s.ordinal) then None
      else
        Some
          (match decisions.(s.ordinal) with
          | Some Simq_admission.Degrade_to_scan -> scan s
          | _ -> (
            match
              Kindex.range_checked ?spec ~budget ?retry
                ?sketch:(shard_funnel ?spec s) ?approx ?anytime s.sindex
                ~query ~epsilon
            with
            | Ok r ->
              {
                r_payload = globalise t s r.Kindex.answers;
                r_rows = List.length r.Kindex.answers;
                r_candidates = r.Kindex.candidates;
                r_nodes = r.Kindex.node_accesses;
                r_scan = false;
                r_partial = r.Kindex.partial;
              }
            | Error _ -> scan s))
    in
    (try
       Otrace.with_span "shard.scatter" @@ fun () ->
       Ok (gather_range ?profile t (Pool.map_array ?pool task t.parts))
     with Shard_failed e -> Error e)

type nearest_result = {
  neighbours : (Dataset.entry * float) list;
  nearest_report : report;
}

(* The canonical NN order: distance first, entry id breaking ties —
   the order the degraded linear selection uses, deterministic at
   every K and domain count. *)
let by_distance ((a : Dataset.entry), da) ((b : Dataset.entry), db) =
  match Float.compare da db with
  | 0 -> compare a.Dataset.id b.Dataset.id
  | c -> c

let rec take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: rest -> x :: take (n - 1) rest

let gather_nearest ?profile t ~k runs =
  let neighbours =
    (* Union of per-shard top-k contains the global top-k (each shard's
       list is exact for its entries); the k-way merge is a sort in
       canonical order over at most K·k pairs. *)
    List.concat_map
      (function None -> [] | Some r -> r.r_payload)
      (Array.to_list runs)
    |> List.sort by_distance |> take k
  in
  let report =
    finish ?profile t ~op:(Printf.sprintf "nearest k=%d" k) ~runs
      ~rows_out:(List.length neighbours)
  in
  { neighbours; nearest_report = report }

let nn_run t s answers =
  {
    r_payload = globalise t s answers;
    r_rows = List.length answers;
    r_candidates = List.length answers;
    r_nodes = 0;
    r_scan = false;
    r_partial = false;
  }

let nearest ?pool ?spec ?normalise_query ?profile t ~query ~k =
  if k <= 0 then invalid_arg "Simq_shard.nearest: k must be positive";
  Otrace.with_span "shard.scatter" @@ fun () ->
  let runs =
    Pool.map_array ?pool
      (fun s ->
        Some
          (nn_run t s
             (Kindex.nearest ?spec ?normalise_query
                ?sketch:(shard_nn_bound ?spec s) s.sindex ~query ~k)))
      t.parts
  in
  gather_nearest ?profile t ~k runs

let nearest_checked ?pool ?spec ?(budget = Budget.unlimited) ?retry ?admission
    ?on_decision ?profile t ~query ~k =
  if k <= 0 then invalid_arg "Simq_shard.nearest_checked: k must be positive";
  let keep = Array.map (fun _ -> true) t.parts in
  let selectivity s =
    let cardinality = Dataset.cardinality s.sdataset in
    Float.min 1. (float_of_int k /. float_of_int cardinality)
  in
  (* The NN funnel reorders refinement, it dismisses nothing, so the
     admission cost model sees no sketch discount — decisions are
     identical with and without sketches. *)
  let sketch_levels _ = 0 in
  match preflight ?admission ~budget ~keep ~selectivity ~sketch_levels t with
  | Error e -> Error e
  | Ok decisions ->
    notify_decisions ?on_decision decisions;
    let scan s =
      match Kindex.nearest_scan ?spec ~budget ?retry s.sindex ~query ~k with
      | Ok answers -> { (nn_run t s answers) with r_scan = true }
      | Error e -> raise (Shard_failed e)
    in
    let task s =
      Some
        (match decisions.(s.ordinal) with
        | Some Simq_admission.Degrade_to_scan -> scan s
        | _ -> (
          match
            Kindex.nearest_checked ?spec ~budget ?retry
              ?sketch:(shard_nn_bound ?spec s) s.sindex ~query ~k
          with
          | Ok answers -> nn_run t s answers
          | Error _ -> scan s))
    in
    (try
       Otrace.with_span "shard.scatter" @@ fun () ->
       Ok (gather_nearest ?profile t ~k (Pool.map_array ?pool task t.parts))
     with Shard_failed e -> Error e)
