lib/shapes/shape.mli: Format Simq_geometry
