lib/shapes/signature.mli: Shape Simq_geometry
