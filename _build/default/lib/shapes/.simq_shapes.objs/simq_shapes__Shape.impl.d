lib/shapes/shape.ml: Array Float Format List Simq_geometry
