lib/shapes/signature.ml: Array Float List Shape Simq_geometry Simq_rtree
