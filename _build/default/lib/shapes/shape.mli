(** Rectilinear shapes: finite unions of axis-aligned rectangles in the
    plane — the shape model of [Jag91], which the paper names (next to
    the DFT for time series) as an instance of the mapping function that
    carries non-point objects into the md-space.

    Rectangles may overlap; all measures are measures of the union. *)

type t

(** [create rects] builds a shape from 2-dimensional rectangles. Raises
    [Invalid_argument] when the list is empty or a rectangle is not
    2-dimensional. *)
val create : Simq_geometry.Rect.t list -> t

(** [of_boxes boxes] builds a shape from [(x0, y0, x1, y1)] corner
    tuples. *)
val of_boxes : (float * float * float * float) list -> t

val rectangles : t -> Simq_geometry.Rect.t list
val rectangle_count : t -> int

(** [mbr shape] is the bounding rectangle of the whole shape. *)
val mbr : t -> Simq_geometry.Rect.t

(** [area shape] is the area of the union (overlaps counted once),
    computed by coordinate compression. *)
val area : t -> float

(** [contains shape (x, y)] is point membership in the union. *)
val contains : t -> float * float -> bool

(** [translate shape ~dx ~dy] and [scale shape ~sx ~sy] are the
    transformations of the shape domain; scaling is about the origin and
    requires positive factors. *)
val translate : t -> dx:float -> dy:float -> t

val scale : t -> sx:float -> sy:float -> t

(** [normalise shape] translates the MBR's lower corner to the origin
    and scales the longer MBR side to 1 — the analogue of the time-series
    normal form: position- and size-invariant. Degenerate shapes (zero
    extent in both axes) map to themselves translated to the origin. *)
val normalise : t -> t

(** [symmetric_difference_area a b] is the area covered by exactly one
    of the two shapes — the exact dissimilarity used to refine index
    answers. Zero iff the unions are equal (up to measure zero). *)
val symmetric_difference_area : t -> t -> float

val pp : Format.formatter -> t -> unit
