(** Shape signatures and the indexed shape store — the [Jag91] instance
    of the framework: a non-point object reaches the md-space through a
    mapping function; here the shape's [k] largest rectangles (after
    normalisation), each encoded as centre + extent.

    Signature distance is a pseudo-metric on shapes: zero for identical
    rectangle covers, small for shapes whose dominant rectangles agree.
    Index answers are {e exact with respect to the signature distance}
    (the Lemma-1 situation of the time-series index); the exact
    {!Shape.symmetric_difference_area} is available as a refinement
    step. *)

(** [point ?k shape] is the [4k]-dimensional feature point (default
    [k = 3]): for each of the [k] largest rectangles of the normalised
    shape, [(cx, cy, w, h)]; zeros pad shapes with fewer rectangles.
    Rectangles are ordered by decreasing area, ties by lower-left
    corner, so equal shapes get equal signatures. *)
val point : ?k:int -> Shape.t -> Simq_geometry.Point.t

(** [distance ?k a b] is the Euclidean distance between signatures. *)
val distance : ?k:int -> Shape.t -> Shape.t -> float

type t
(** A collection of named shapes indexed by signature. *)

val build : ?k:int -> ?max_fill:int -> (string * Shape.t) list -> t

val size : t -> int

type hit = {
  name : string;
  shape : Shape.t;
  signature_distance : float;
}

(** [range t ~query ~epsilon] is every shape whose signature is within
    [epsilon] of the query's, exact w.r.t. the signature distance. *)
val range : t -> query:Shape.t -> epsilon:float -> hit list

(** [nearest t ~query ~k] is the [k] closest signatures, closest
    first. *)
val nearest : t -> query:Shape.t -> k:int -> hit list

(** [refine hits ~query ~max_area] keeps hits whose exact normalised
    symmetric-difference area from the query is at most [max_area],
    re-sorted by that area — the postprocessing step. *)
val refine :
  hit list -> query:Shape.t -> max_area:float -> (hit * float) list
