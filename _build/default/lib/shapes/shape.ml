module Rect = Simq_geometry.Rect

type t = { rects : Rect.t list }

let create rects =
  if rects = [] then invalid_arg "Shape.create: empty shape";
  List.iter
    (fun r ->
      if Rect.dims r <> 2 then
        invalid_arg "Shape.create: rectangles must be 2-dimensional")
    rects;
  { rects }

let of_boxes boxes =
  create
    (List.map
       (fun (x0, y0, x1, y1) -> Rect.create ~lo:[| x0; y0 |] ~hi:[| x1; y1 |])
       boxes)

let rectangles t = t.rects
let rectangle_count t = List.length t.rects
let mbr t = Rect.union_many t.rects

let contains t (x, y) =
  List.exists (fun r -> Rect.contains_point r [| x; y |]) t.rects

(* Coordinate compression: the rectangle edges cut the plane into a grid
   whose cells are homogeneous (entirely inside or outside the union),
   so the union's measure is the sum of the covered cells. *)
let grid_of_edges rect_lists =
  let xs = ref [] and ys = ref [] in
  List.iter
    (List.iter (fun (r : Rect.t) ->
         xs := r.Rect.lo.(0) :: r.Rect.hi.(0) :: !xs;
         ys := r.Rect.lo.(1) :: r.Rect.hi.(1) :: !ys))
    rect_lists;
  let dedup vs = List.sort_uniq Float.compare vs in
  (Array.of_list (dedup !xs), Array.of_list (dedup !ys))

let cell_covered rects ~x0 ~x1 ~y0 ~y1 =
  (* The cell is homogeneous: test its centre. *)
  let cx = (x0 +. x1) /. 2. and cy = (y0 +. y1) /. 2. in
  List.exists (fun r -> Rect.contains_point r [| cx; cy |]) rects

let measure ~predicate rect_lists =
  let xs, ys = grid_of_edges rect_lists in
  let total = ref 0. in
  for i = 0 to Array.length xs - 2 do
    for j = 0 to Array.length ys - 2 do
      let x0 = xs.(i) and x1 = xs.(i + 1) in
      let y0 = ys.(j) and y1 = ys.(j + 1) in
      if predicate ~x0 ~x1 ~y0 ~y1 then
        total := !total +. ((x1 -. x0) *. (y1 -. y0))
    done
  done;
  !total

let area t =
  measure
    ~predicate:(fun ~x0 ~x1 ~y0 ~y1 -> cell_covered t.rects ~x0 ~x1 ~y0 ~y1)
    [ t.rects ]

let symmetric_difference_area a b =
  measure
    ~predicate:(fun ~x0 ~x1 ~y0 ~y1 ->
      let in_a = cell_covered a.rects ~x0 ~x1 ~y0 ~y1 in
      let in_b = cell_covered b.rects ~x0 ~x1 ~y0 ~y1 in
      in_a <> in_b)
    [ a.rects; b.rects ]

let map_rect f (r : Rect.t) =
  let x0, y0 = f (r.Rect.lo.(0), r.Rect.lo.(1)) in
  let x1, y1 = f (r.Rect.hi.(0), r.Rect.hi.(1)) in
  Rect.create ~lo:[| x0; y0 |] ~hi:[| x1; y1 |]

let translate t ~dx ~dy =
  { rects = List.map (map_rect (fun (x, y) -> (x +. dx, y +. dy))) t.rects }

let scale t ~sx ~sy =
  if sx <= 0. || sy <= 0. then invalid_arg "Shape.scale: factors must be positive";
  { rects = List.map (map_rect (fun (x, y) -> (x *. sx, y *. sy))) t.rects }

let normalise t =
  let bb = mbr t in
  let moved =
    translate t ~dx:(-.bb.Rect.lo.(0)) ~dy:(-.bb.Rect.lo.(1))
  in
  let w = bb.Rect.hi.(0) -. bb.Rect.lo.(0) in
  let h = bb.Rect.hi.(1) -. bb.Rect.lo.(1) in
  let side = Float.max w h in
  if side <= 0. then moved else scale moved ~sx:(1. /. side) ~sy:(1. /. side)

let pp ppf t =
  Format.fprintf ppf "shape{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
       Rect.pp)
    t.rects
