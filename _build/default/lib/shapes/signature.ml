module Rect = Simq_geometry.Rect
module Point = Simq_geometry.Point
module Rstar = Simq_rtree.Rstar

let default_k = 3

let point ?(k = default_k) shape =
  if k < 1 then invalid_arg "Signature.point: k must be positive";
  let normalised = Shape.normalise shape in
  let keyed =
    List.map
      (fun (r : Rect.t) ->
        let w = r.Rect.hi.(0) -. r.Rect.lo.(0) in
        let h = r.Rect.hi.(1) -. r.Rect.lo.(1) in
        (w *. h, r))
      (Shape.rectangles normalised)
  in
  let sorted =
    List.sort
      (fun (a1, r1) (a2, r2) ->
        match Float.compare a2 a1 with
        | 0 -> compare r1.Rect.lo r2.Rect.lo
        | c -> c)
      keyed
  in
  let features = Array.make (4 * k) 0. in
  List.iteri
    (fun i (_, (r : Rect.t)) ->
      if i < k then begin
        let w = r.Rect.hi.(0) -. r.Rect.lo.(0) in
        let h = r.Rect.hi.(1) -. r.Rect.lo.(1) in
        features.(4 * i) <- (r.Rect.lo.(0) +. r.Rect.hi.(0)) /. 2.;
        features.((4 * i) + 1) <- (r.Rect.lo.(1) +. r.Rect.hi.(1)) /. 2.;
        features.((4 * i) + 2) <- w;
        features.((4 * i) + 3) <- h
      end)
    sorted;
  features

let distance ?k a b = Point.distance (point ?k a) (point ?k b)

type entry = {
  entry_name : string;
  entry_shape : Shape.t;
}

type t = {
  k : int;
  tree : entry Rstar.t;
}

type hit = {
  name : string;
  shape : Shape.t;
  signature_distance : float;
}

let build ?(k = default_k) ?(max_fill = 16) shapes =
  let items =
    Array.of_list
      (List.map
         (fun (name, shape) ->
           (point ~k shape, { entry_name = name; entry_shape = shape }))
         shapes)
  in
  { k; tree = Simq_rtree.Bulk.load ~max_fill ~dims:(4 * k) items }

let size t = Rstar.size t.tree

let range t ~query ~epsilon =
  if epsilon < 0. then invalid_arg "Signature.range: negative epsilon";
  let q = point ~k:t.k query in
  let lo = Array.map (fun v -> v -. epsilon) q in
  let hi = Array.map (fun v -> v +. epsilon) q in
  Rstar.search_rect t.tree (Rect.create ~lo ~hi)
  |> List.filter_map (fun (p, entry) ->
         let d = Point.distance q p in
         if d <= epsilon then
           Some
             {
               name = entry.entry_name;
               shape = entry.entry_shape;
               signature_distance = d;
             }
         else None)
  |> List.sort (fun a b -> Float.compare a.signature_distance b.signature_distance)

let nearest t ~query ~k =
  let q = point ~k:t.k query in
  Simq_rtree.Nn.nearest t.tree ~query:q ~k
  |> List.map (fun (_, entry, d) ->
         {
           name = entry.entry_name;
           shape = entry.entry_shape;
           signature_distance = d;
         })

let refine hits ~query ~max_area =
  let normal_query = Shape.normalise query in
  List.filter_map
    (fun hit ->
      let a =
        Shape.symmetric_difference_area normal_query
          (Shape.normalise hit.shape)
      in
      if a <= max_area then Some (hit, a) else None)
    hits
  |> List.sort (fun (_, a1) (_, a2) -> Float.compare a1 a2)
