(** Axis-aligned hyperrectangles — the minimum bounding rectangles (MBRs)
    of R-tree entries — with the geometric measures used by the R*-tree
    heuristics ([BKSS90]) and the nearest-neighbour metrics of [RKV95]. *)

type t = private {
  lo : float array;
  hi : float array;  (** [lo.(i) <= hi.(i)] for every dimension [i]. *)
}

(** [create ~lo ~hi] builds a rectangle, swapping bounds per dimension if
    given in the wrong order, so the invariant always holds. Raises
    [Invalid_argument] on dimension mismatch, empty dimensions or
    non-finite bounds. *)
val create : lo:float array -> hi:float array -> t

(** [of_point p] is the degenerate rectangle containing exactly [p]. *)
val of_point : Point.t -> t

(** [of_points ps] is the MBR of a non-empty list of points. *)
val of_points : Point.t list -> t

val dims : t -> int
val contains_point : t -> Point.t -> bool

(** [contains_point_strict r p] requires [p] to be interior (no boundary
    contact); used by the safety property tests. *)
val contains_point_strict : t -> Point.t -> bool

val contains_rect : t -> t -> bool
val intersects : t -> t -> bool

(** [intersection a b] is [None] when the rectangles are disjoint. *)
val intersection : t -> t -> t option

(** [union a b] is the MBR of both rectangles. *)
val union : t -> t -> t

(** [union_many rs] folds {!union} over a non-empty list. *)
val union_many : t list -> t

(** [area r] is the volume (product of extents). *)
val area : t -> float

(** [margin r] is the half-perimeter (sum of extents) used by the R*
    split heuristic. *)
val margin : t -> float

(** [overlap_area a b] is the volume of the intersection (0 when
    disjoint). *)
val overlap_area : t -> t -> float

(** [enlargement r ~extra] is [area (union r extra) - area r], the
    ChooseSubtree criterion. *)
val enlargement : t -> extra:t -> float

val center : t -> Point.t

(** [mindist p r] is the minimum Euclidean distance from [p] to any point
    of [r]; 0 when [p] is inside — the optimistic NN bound of [RKV95]. *)
val mindist : Point.t -> t -> float

(** [minmaxdist p r] is the [RKV95] pessimistic bound: the smallest
    distance within which at least one data point of [r] must lie
    (assuming every face of an MBR touches data). *)
val minmaxdist : Point.t -> t -> float

val equal : ?eps:float -> t -> t -> bool
val pp : Format.formatter -> t -> unit
