type t = {
  lo : float array;
  hi : float array;
}

let create ~lo ~hi =
  let d = Array.length lo in
  if d = 0 then invalid_arg "Rect.create: zero dimensions";
  if Array.length hi <> d then invalid_arg "Rect.create: dimension mismatch";
  let lo' = Array.make d 0. and hi' = Array.make d 0. in
  for i = 0 to d - 1 do
    if not (Float.is_finite lo.(i) && Float.is_finite hi.(i)) then
      invalid_arg "Rect.create: non-finite bound";
    lo'.(i) <- Float.min lo.(i) hi.(i);
    hi'.(i) <- Float.max lo.(i) hi.(i)
  done;
  { lo = lo'; hi = hi' }

let of_point p = create ~lo:(Array.copy p) ~hi:(Array.copy p)

let dims r = Array.length r.lo

let union a b =
  if dims a <> dims b then invalid_arg "Rect.union: dimension mismatch";
  {
    lo = Array.map2 Float.min a.lo b.lo;
    hi = Array.map2 Float.max a.hi b.hi;
  }

let union_many = function
  | [] -> invalid_arg "Rect.union_many: empty list"
  | r :: rest -> List.fold_left union r rest

let of_points = function
  | [] -> invalid_arg "Rect.of_points: empty list"
  | ps -> union_many (List.map of_point ps)

let contains_point r p =
  dims r = Array.length p
  &&
  let ok = ref true in
  for i = 0 to dims r - 1 do
    if p.(i) < r.lo.(i) || p.(i) > r.hi.(i) then ok := false
  done;
  !ok

let contains_point_strict r p =
  dims r = Array.length p
  &&
  let ok = ref true in
  for i = 0 to dims r - 1 do
    if p.(i) <= r.lo.(i) || p.(i) >= r.hi.(i) then ok := false
  done;
  !ok

let contains_rect outer inner =
  dims outer = dims inner
  &&
  let ok = ref true in
  for i = 0 to dims outer - 1 do
    if inner.lo.(i) < outer.lo.(i) || inner.hi.(i) > outer.hi.(i) then
      ok := false
  done;
  !ok

let intersects a b =
  if dims a <> dims b then invalid_arg "Rect.intersects: dimension mismatch";
  let ok = ref true in
  for i = 0 to dims a - 1 do
    if a.hi.(i) < b.lo.(i) || b.hi.(i) < a.lo.(i) then ok := false
  done;
  !ok

let intersection a b =
  if intersects a b then
    Some
      {
        lo = Array.map2 Float.max a.lo b.lo;
        hi = Array.map2 Float.min a.hi b.hi;
      }
  else None

let area r =
  let acc = ref 1. in
  for i = 0 to dims r - 1 do
    acc := !acc *. (r.hi.(i) -. r.lo.(i))
  done;
  !acc

let margin r =
  let acc = ref 0. in
  for i = 0 to dims r - 1 do
    acc := !acc +. (r.hi.(i) -. r.lo.(i))
  done;
  !acc

let overlap_area a b =
  match intersection a b with
  | None -> 0.
  | Some r -> area r

let enlargement r ~extra = area (union r extra) -. area r

let center r =
  Array.init (dims r) (fun i -> (r.lo.(i) +. r.hi.(i)) /. 2.)

let mindist p r =
  if Array.length p <> dims r then
    invalid_arg "Rect.mindist: dimension mismatch";
  let acc = ref 0. in
  for i = 0 to dims r - 1 do
    let d =
      if p.(i) < r.lo.(i) then r.lo.(i) -. p.(i)
      else if p.(i) > r.hi.(i) then p.(i) -. r.hi.(i)
      else 0.
    in
    acc := !acc +. (d *. d)
  done;
  sqrt !acc

let minmaxdist p r =
  if Array.length p <> dims r then
    invalid_arg "Rect.minmaxdist: dimension mismatch";
  let d = dims r in
  (* rm_i: squared distance to the nearer face along i;
     r_M i: squared distance to the farther face along i. *)
  let near = Array.make d 0. and far = Array.make d 0. in
  let far_total = ref 0. in
  for i = 0 to d - 1 do
    let mid = (r.lo.(i) +. r.hi.(i)) /. 2. in
    let near_face = if p.(i) <= mid then r.lo.(i) else r.hi.(i) in
    let far_face = if p.(i) >= mid then r.lo.(i) else r.hi.(i) in
    near.(i) <- (p.(i) -. near_face) ** 2.;
    far.(i) <- (p.(i) -. far_face) ** 2.;
    far_total := !far_total +. far.(i)
  done;
  let best = ref Float.infinity in
  for k = 0 to d - 1 do
    let candidate = !far_total -. far.(k) +. near.(k) in
    if candidate < !best then best := candidate
  done;
  sqrt !best

let equal ?(eps = 1e-9) a b =
  dims a = dims b
  && Array.for_all2 (fun x y -> Float.abs (x -. y) <= eps) a.lo b.lo
  && Array.for_all2 (fun x y -> Float.abs (x -. y) <= eps) a.hi b.hi

let pp ppf r =
  Format.fprintf ppf "rect[%a .. %a]" Point.pp r.lo Point.pp r.hi
