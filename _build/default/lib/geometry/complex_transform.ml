module Cpx = Simq_dsp.Cpx

type t = {
  a : Cpx.t array;
  b : Cpx.t array;
}

exception Unsafe of string

let create ~a ~b =
  if Array.length a <> Array.length b then
    invalid_arg "Complex_transform.create: length mismatch";
  if Array.length a = 0 then invalid_arg "Complex_transform.create: empty";
  { a = Array.copy a; b = Array.copy b }

let features t = Array.length t.a
let identity k = create ~a:(Array.make k Cpx.one) ~b:(Array.make k Cpx.zero)

let reverse k =
  create ~a:(Array.make k (Cpx.of_float (-1.))) ~b:(Array.make k Cpx.zero)

let stretch a = create ~a ~b:(Array.make (Array.length a) Cpx.zero)
let translate b = create ~a:(Array.make (Array.length b) Cpx.one) ~b

let apply t x =
  if Array.length x <> features t then
    invalid_arg "Complex_transform.apply: length mismatch";
  Array.init (features t) (fun i -> Cpx.add (Cpx.mul t.a.(i) x.(i)) t.b.(i))

let compose outer inner =
  if features outer <> features inner then
    invalid_arg "Complex_transform.compose: length mismatch";
  let k = features outer in
  {
    a = Array.init k (fun i -> Cpx.mul outer.a.(i) inner.a.(i));
    b =
      Array.init k (fun i ->
          Cpx.add (Cpx.mul outer.a.(i) inner.b.(i)) outer.b.(i));
  }

let is_real_stretch ?(eps = 1e-12) t =
  Array.for_all (fun z -> Float.abs (Cpx.im z) <= eps) t.a

let is_pure_stretch ?(eps = 1e-12) t =
  Array.for_all (fun z -> Cpx.abs z <= eps) t.b

let to_rectangular t =
  if not (is_real_stretch t) then
    raise (Unsafe "complex stretch is not safe in S_rect (Theorem 2)");
  let k = features t in
  let a = Array.make (2 * k) 0. and b = Array.make (2 * k) 0. in
  for i = 0 to k - 1 do
    a.(2 * i) <- Cpx.re t.a.(i);
    a.((2 * i) + 1) <- Cpx.re t.a.(i);
    b.(2 * i) <- Cpx.re t.b.(i);
    b.((2 * i) + 1) <- Cpx.im t.b.(i)
  done;
  Linear_transform.create ~a ~b

let to_polar t =
  if not (is_pure_stretch t) then
    raise (Unsafe "translation is not safe in S_pol (Theorem 3)");
  let k = features t in
  let a = Array.make (2 * k) 0. and b = Array.make (2 * k) 0. in
  for i = 0 to k - 1 do
    a.(2 * i) <- Cpx.abs t.a.(i);
    a.((2 * i) + 1) <- 1.;
    b.(2 * i) <- 0.;
    b.((2 * i) + 1) <- Cpx.angle t.a.(i)
  done;
  Linear_transform.create ~a ~b

let pp ppf t =
  Format.fprintf ppf "T(a=%a, b=%a)" Cpx.pp_array t.a Cpx.pp_array t.b
