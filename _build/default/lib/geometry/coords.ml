module Cpx = Simq_dsp.Cpx

type representation = Rectangular | Polar

let dims_of_features k = 2 * k

let encode rep x =
  let k = Array.length x in
  let p = Array.make (2 * k) 0. in
  for i = 0 to k - 1 do
    match rep with
    | Rectangular ->
      p.(2 * i) <- Cpx.re x.(i);
      p.((2 * i) + 1) <- Cpx.im x.(i)
    | Polar ->
      p.(2 * i) <- Cpx.abs x.(i);
      p.((2 * i) + 1) <- Cpx.angle x.(i)
  done;
  p

let decode rep p =
  let d = Array.length p in
  if d mod 2 <> 0 then invalid_arg "Coords.decode: odd dimension count";
  Array.init (d / 2) (fun i ->
      match rep with
      | Rectangular -> Cpx.make p.(2 * i) p.((2 * i) + 1)
      | Polar -> Cpx.polar p.(2 * i) p.((2 * i) + 1))

let search_region rep ~query ~epsilon =
  if epsilon < 0. then invalid_arg "Coords.search_region: negative epsilon";
  let k = Array.length query in
  let region = Array.make (2 * k) Region.full_circle in
  for i = 0 to k - 1 do
    match rep with
    | Rectangular ->
      let re = Cpx.re query.(i) and im = Cpx.im query.(i) in
      region.(2 * i) <- Region.linear ~lo:(re -. epsilon) ~hi:(re +. epsilon);
      region.((2 * i) + 1) <-
        Region.linear ~lo:(im -. epsilon) ~hi:(im +. epsilon)
    | Polar ->
      let m = Cpx.abs query.(i) and alpha = Cpx.angle query.(i) in
      region.(2 * i) <-
        Region.linear ~lo:(Float.max 0. (m -. epsilon)) ~hi:(m +. epsilon);
      region.((2 * i) + 1) <-
        (if epsilon >= m then Region.full_circle
         else begin
           let delta = asin (epsilon /. m) in
           Region.circular ~lo:(alpha -. delta) ~hi:(alpha +. delta)
         end)
  done;
  region

let distance_lower_bound rep a b =
  match rep with
  | Rectangular -> Point.distance a b
  | Polar ->
    let d = Array.length a in
    if d <> Array.length b then
      invalid_arg "Coords.distance_lower_bound: dimension mismatch";
    if d mod 2 <> 0 then
      invalid_arg "Coords.distance_lower_bound: odd dimension count";
    let acc = ref 0. in
    for i = 0 to (d / 2) - 1 do
      let m1 = a.(2 * i) and m2 = b.(2 * i) in
      let dm = m1 -. m2 in
      let dtheta = a.((2 * i) + 1) -. b.((2 * i) + 1) in
      (* chord between the two points, decomposed radially/tangentially:
         |m1 e^(jθ1) - m2 e^(jθ2)|² = (m1-m2)² + 2 m1 m2 (1 - cos Δθ)
         = (m1-m2)² + (2 sqrt(m1 m2) sin(Δθ/2))²  — exact, so just use it. *)
      let cross = 2. *. m1 *. m2 *. (1. -. cos dtheta) in
      acc := !acc +. (dm *. dm) +. Float.max 0. cross
    done;
    sqrt !acc
