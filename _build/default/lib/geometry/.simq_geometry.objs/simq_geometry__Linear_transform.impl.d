lib/geometry/linear_transform.ml: Array Float Format Point Rect
