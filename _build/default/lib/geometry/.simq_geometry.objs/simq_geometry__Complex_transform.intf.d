lib/geometry/complex_transform.mli: Format Linear_transform Simq_dsp
