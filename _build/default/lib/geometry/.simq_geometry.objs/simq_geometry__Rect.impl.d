lib/geometry/rect.ml: Array Float Format List Point
