lib/geometry/linear_transform.mli: Format Point Rect
