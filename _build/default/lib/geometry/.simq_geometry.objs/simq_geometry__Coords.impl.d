lib/geometry/coords.ml: Array Float Point Region Simq_dsp
