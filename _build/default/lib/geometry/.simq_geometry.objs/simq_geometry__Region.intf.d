lib/geometry/region.mli: Format Point Rect
