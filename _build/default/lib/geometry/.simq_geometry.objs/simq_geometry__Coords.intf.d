lib/geometry/coords.mli: Point Region Simq_dsp
