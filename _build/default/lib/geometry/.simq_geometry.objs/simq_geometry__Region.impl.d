lib/geometry/region.ml: Array Float Format Rect
