lib/geometry/complex_transform.ml: Array Float Format Linear_transform Simq_dsp
