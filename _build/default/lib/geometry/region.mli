(** Search regions: per-dimension ranges that are either ordinary linear
    intervals or {e circular} intervals of angles.

    The polar representation [S_pol] stores phase angles, and both
    transformed MBRs (whose angles have been shifted by [Angle a_i],
    Theorem 3) and ε-ball search rectangles (Figure 7) can stick out of
    the principal range (-π, π]. Treating those dimensions as circular
    keeps the overlap tests exact instead of conservatively widening to
    the full circle. *)

type range =
  | Linear of { lo : float; hi : float }
      (** ordinary interval; [lo <= hi] *)
  | Circular of { lo : float; width : float }
      (** the set of angles [lo + s (mod 2π)] for [0 <= s <= width],
          with [0 <= width <= 2π] *)

type t = range array

(** [linear ~lo ~hi] normalises bound order. *)
val linear : lo:float -> hi:float -> range

(** [circular ~lo ~hi] is the arc travelled counter-clockwise from [lo]
    to [hi]; when [hi - lo >= 2π] it is the full circle. *)
val circular : lo:float -> hi:float -> range

val full_circle : range

(** [of_rect r] views every dimension of [r] as a linear range. *)
val of_rect : Rect.t -> t

(** [contains region p] tests point membership; circular dimensions
    compare angles modulo 2π. Raises [Invalid_argument] on dimension
    mismatch. *)
val contains : t -> Point.t -> bool

(** [intersects_rect region r] tests whether the region can contain any
    point of [r]. For a circular dimension the rectangle's interval is a
    plain interval of reals that is matched against every unwinding of
    the arc, so shifted MBRs are handled exactly. *)
val intersects_rect : t -> Rect.t -> bool

(** [contains_value range v] is the one-dimensional membership test
    behind {!contains}; exposed so hot paths can test transformed
    coordinates without materialising points. *)
val contains_value : range -> float -> bool

(** [meets_interval range ~lo ~hi] is the one-dimensional overlap test
    behind {!intersects_rect} ([lo <= hi] expected). *)
val meets_interval : range -> lo:float -> hi:float -> bool

val pp : Format.formatter -> t -> unit
