(** Linear transformations over complex feature vectors (Section 3.1):
    [T = (a, b)] maps the complex vector [x] to [a * x + b]
    element-wise. DFT coefficients are complex, so this is the form in
    which time-series transformations (moving average, reversal, warp)
    reach the index.

    Safety (Definition 1) depends on the coordinate representation:
    - Theorem 2: [a] real, [b] complex — safe in the rectangular space
      [S_rect]; {!to_rectangular} performs the lowering to a real
      transformation on 2k dimensions.
    - Theorem 3: [a] complex, [b = 0] — safe in the polar space [S_pol];
      {!to_polar} lowers to magnitude-stretch + angle-shift.

    A complex [a] is {e not} safe in [S_rect]; the counterexample from
    the paper is exercised in the test suite. *)

type t = private {
  a : Simq_dsp.Cpx.t array;
  b : Simq_dsp.Cpx.t array;
}

exception Unsafe of string
(** Raised by the lowering functions when the transformation does not
    satisfy the corresponding theorem's hypothesis. *)

(** [create ~a ~b] requires equal non-zero lengths. *)
val create : a:Simq_dsp.Cpx.t array -> b:Simq_dsp.Cpx.t array -> t

(** [features t] is the number of complex features [k]. *)
val features : t -> int

(** [identity k] is [(1…1, 0…0)]. *)
val identity : int -> t

(** [reverse k] is the reversal [T_rev = (-1…-1, 0…0)] of Example 2.2. *)
val reverse : int -> t

(** [stretch a] is [(a, 0)] — the form of [T_mavg] and the time-warp
    transformation. *)
val stretch : Simq_dsp.Cpx.t array -> t

(** [translate b] is [(1…1, b)]. *)
val translate : Simq_dsp.Cpx.t array -> t

(** [apply t x] is [a * x + b]. Raises [Invalid_argument] on length
    mismatch. *)
val apply : t -> Simq_dsp.Cpx.t array -> Simq_dsp.Cpx.t array

(** [compose outer inner] applies [inner] first. *)
val compose : t -> t -> t

(** [is_real_stretch ?eps t] tests the hypothesis of Theorem 2:
    every [a_i] is real. *)
val is_real_stretch : ?eps:float -> t -> bool

(** [is_pure_stretch ?eps t] tests the hypothesis of Theorem 3:
    [b = 0]. *)
val is_pure_stretch : ?eps:float -> t -> bool

(** [to_rectangular t] lowers [t] to the real transformation [(c, d)] on
    [S_rect] given by Theorem 2: [c_2i = c_2i+1 = a_i],
    [d_2i = Re b_i], [d_2i+1 = Im b_i] (0-indexed). Raises {!Unsafe}
    when some [a_i] is not real. *)
val to_rectangular : t -> Linear_transform.t

(** [to_polar t] lowers [t] to the real transformation on [S_pol] given
    by Theorem 3: magnitudes stretch by [|a_i|], angles shift by
    [Angle a_i]. Raises {!Unsafe} when [b ≠ 0]. *)
val to_polar : t -> Linear_transform.t

val pp : Format.formatter -> t -> unit
