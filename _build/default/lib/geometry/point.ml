type t = float array

let dims = Array.length

let create coords =
  Array.iter
    (fun v ->
      if not (Float.is_finite v) then
        invalid_arg "Point.create: non-finite coordinate")
    coords;
  coords

let squared_distance a b =
  if Array.length a <> Array.length b then
    invalid_arg "Point.squared_distance: dimension mismatch";
  let acc = ref 0. in
  for i = 0 to Array.length a - 1 do
    let d = a.(i) -. b.(i) in
    acc := !acc +. (d *. d)
  done;
  !acc

let distance a b = sqrt (squared_distance a b)

let equal ?(eps = 1e-9) a b =
  Array.length a = Array.length b
  && Array.for_all2 (fun x y -> Float.abs (x -. y) <= eps) a b

let pp ppf p =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_seq ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       (fun ppf v -> Format.fprintf ppf "%g" v))
    (Array.to_seq p)
