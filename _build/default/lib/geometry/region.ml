let two_pi = 2. *. Float.pi

type range =
  | Linear of { lo : float; hi : float }
  | Circular of { lo : float; width : float }

type t = range array

let linear ~lo ~hi = Linear { lo = Float.min lo hi; hi = Float.max lo hi }

let circular ~lo ~hi =
  if hi < lo then invalid_arg "Region.circular: hi < lo";
  let width = Float.min (hi -. lo) two_pi in
  Circular { lo; width }

let full_circle = Circular { lo = -.Float.pi; width = two_pi }

let of_rect (r : Rect.t) =
  Array.init (Rect.dims r) (fun i ->
      Linear { lo = r.Rect.lo.(i); hi = r.Rect.hi.(i) })

(* Positive remainder of [x] modulo 2π, in [0, 2π). *)
let pos_mod x =
  let r = Float.rem x two_pi in
  if r < 0. then r +. two_pi else r

let contains_value range v =
  match range with
  | Linear { lo; hi } -> lo <= v && v <= hi
  | Circular { lo; width } ->
    if width >= two_pi then true else pos_mod (v -. lo) <= width +. 1e-12

(* Does the arc [lo, lo+width] (mod 2π) meet the plain interval
   [ilo, ihi]? Check every unwinding of the arc that can reach the
   interval. *)
let arc_meets_interval ~lo ~width ~ilo ~ihi =
  if width >= two_pi then true
  else begin
    let k_min = Float.to_int (Float.floor ((ilo -. lo -. width) /. two_pi)) in
    let k_max = Float.to_int (Float.ceil ((ihi -. lo) /. two_pi)) in
    let rec go k =
      if k > k_max then false
      else begin
        let a = lo +. (float_of_int k *. two_pi) in
        let b = a +. width in
        if a <= ihi && ilo <= b then true else go (k + 1)
      end
    in
    go k_min
  end

let meets_interval range ~lo:ilo ~hi:ihi =
  match range with
  | Linear { lo; hi } -> lo <= ihi && ilo <= hi
  | Circular { lo; width } -> arc_meets_interval ~lo ~width ~ilo ~ihi

let contains region p =
  if Array.length region <> Array.length p then
    invalid_arg "Region.contains: dimension mismatch";
  let ok = ref true in
  for i = 0 to Array.length region - 1 do
    if not (contains_value region.(i) p.(i)) then ok := false
  done;
  !ok

let intersects_rect region (r : Rect.t) =
  if Array.length region <> Rect.dims r then
    invalid_arg "Region.intersects_rect: dimension mismatch";
  let ok = ref true in
  for i = 0 to Array.length region - 1 do
    let ilo = r.Rect.lo.(i) and ihi = r.Rect.hi.(i) in
    if not (meets_interval region.(i) ~lo:ilo ~hi:ihi) then ok := false
  done;
  !ok

let pp_range ppf = function
  | Linear { lo; hi } -> Format.fprintf ppf "[%g, %g]" lo hi
  | Circular { lo; width } -> Format.fprintf ppf "arc(%g, +%g)" lo width

let pp ppf region =
  Format.fprintf ppf "region(%a)"
    (Format.pp_print_seq ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
       pp_range)
    (Array.to_seq region)
