(** Real linear transformations [(a, b)] of Section 3: point [x] maps to
    [a * x + b] (element-wise stretch plus translation). By Theorem 1
    every such transformation is {e safe}: it maps rectangles to
    rectangles, interior points to interior points, and exterior points
    to exterior points — negative stretches merely flip the bounds, which
    {!apply_rect} renormalises. *)

type t = private {
  a : float array;  (** per-dimension stretch *)
  b : float array;  (** per-dimension translation *)
}

(** [create ~a ~b] validates finiteness and equal dimensions. *)
val create : a:float array -> b:float array -> t

(** [identity d] is [(1…1, 0…0)] — the transformation [T_i] used by the
    paper's Figures 8 and 9 to isolate the cost of transformed search. *)
val identity : int -> t

(** [uniform_scale d c] stretches every dimension by [c]. *)
val uniform_scale : int -> float -> t

(** [translation b] is [(1…1, b)]. *)
val translation : float array -> t

val dims : t -> int
val is_identity : ?eps:float -> t -> bool

(** [apply t p] is [a * p + b]. *)
val apply : t -> Point.t -> Point.t

(** [apply_rect t r] is the image of [r]; a rectangle by safety. *)
val apply_rect : t -> Rect.t -> Rect.t

(** [compose outer inner] applies [inner] first:
    [apply (compose f g) p = apply f (apply g p)]. *)
val compose : t -> t -> t

(** [inverse t] is [Some t'] with [t' ∘ t = id] when every stretch is
    non-zero. *)
val inverse : t -> t option

val pp : Format.formatter -> t -> unit
