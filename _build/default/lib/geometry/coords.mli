(** Coordinate representations of complex feature vectors (Section 3.1).

    A vector of [k] complex features becomes a point in a [2k]-dimensional
    real space, either:
    - [Rectangular] ([S_rect]): dimensions [2i, 2i+1] carry
      [Re x_i, Im x_i]; Euclidean distance on points equals complex
      Euclidean distance on features; or
    - [Polar] ([S_pol]): dimensions [2i, 2i+1] carry [|x_i|, Angle x_i];
      distance is distorted but complex stretches are safe (Theorem 3). *)

type representation = Rectangular | Polar

(** [dims_of_features k] is [2k]. *)
val dims_of_features : int -> int

(** [encode rep x] maps [k] complex features to a [2k]-dimensional
    point. *)
val encode : representation -> Simq_dsp.Cpx.t array -> Point.t

(** [decode rep p] inverts {!encode}. Raises [Invalid_argument] on odd
    dimension counts. *)
val decode : representation -> Point.t -> Simq_dsp.Cpx.t array

(** [search_region rep ~query ~epsilon] is the minimum bounding region of
    the ε-ball around [query] (Section 3.1):
    - [Rectangular]: [q_i ± ε] per dimension;
    - [Polar]: magnitude in [max 0 (m-ε), m+ε], angle in
      [α ± asin(ε/m)] — the full circle when [ε >= m] (Figure 7).
    Every complex vector within Euclidean distance [epsilon] of [query]
    encodes to a point inside the region. *)
val search_region :
  representation -> query:Simq_dsp.Cpx.t array -> epsilon:float -> Region.t

(** [distance_lower_bound rep a b] is a lower bound on the complex
    Euclidean distance given only encoded points: exact in
    [Rectangular]; in [Polar] the chord-length bound
    [sqrt (Σ (m1-m2)² + (2·min(m1,m2)·sin(Δθ/2))²)]. *)
val distance_lower_bound : representation -> Point.t -> Point.t -> float
