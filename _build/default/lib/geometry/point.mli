(** Points of an n-dimensional feature space (“md-space”). Objects are
    points; non-point objects reach the space through a mapping function
    such as the DFT (Section 3). *)

type t = float array

val dims : t -> int

(** [create coords] validates that every coordinate is finite. *)
val create : float array -> t

(** [distance a b] is the Euclidean distance. Raises [Invalid_argument]
    on dimension mismatch. *)
val distance : t -> t -> float

(** [squared_distance a b] avoids the final square root. *)
val squared_distance : t -> t -> float

val equal : ?eps:float -> t -> t -> bool
val pp : Format.formatter -> t -> unit
