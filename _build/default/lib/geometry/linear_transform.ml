type t = {
  a : float array;
  b : float array;
}

let create ~a ~b =
  if Array.length a <> Array.length b then
    invalid_arg "Linear_transform.create: dimension mismatch";
  if Array.length a = 0 then invalid_arg "Linear_transform.create: empty";
  Array.iter
    (fun v ->
      if not (Float.is_finite v) then
        invalid_arg "Linear_transform.create: non-finite coefficient")
    a;
  Array.iter
    (fun v ->
      if not (Float.is_finite v) then
        invalid_arg "Linear_transform.create: non-finite coefficient")
    b;
  { a = Array.copy a; b = Array.copy b }

let identity d = create ~a:(Array.make d 1.) ~b:(Array.make d 0.)
let uniform_scale d c = create ~a:(Array.make d c) ~b:(Array.make d 0.)
let translation b = create ~a:(Array.make (Array.length b) 1.) ~b
let dims t = Array.length t.a

let is_identity ?(eps = 0.) t =
  Array.for_all (fun v -> Float.abs (v -. 1.) <= eps) t.a
  && Array.for_all (fun v -> Float.abs v <= eps) t.b

let apply t p =
  if Array.length p <> dims t then
    invalid_arg "Linear_transform.apply: dimension mismatch";
  Array.init (dims t) (fun i -> (t.a.(i) *. p.(i)) +. t.b.(i))

let apply_rect t (r : Rect.t) =
  (* Rect.create renormalises when a negative stretch swaps the bounds. *)
  Rect.create ~lo:(apply t r.Rect.lo) ~hi:(apply t r.Rect.hi)

let compose outer inner =
  if dims outer <> dims inner then
    invalid_arg "Linear_transform.compose: dimension mismatch";
  let d = dims outer in
  {
    a = Array.init d (fun i -> outer.a.(i) *. inner.a.(i));
    b = Array.init d (fun i -> (outer.a.(i) *. inner.b.(i)) +. outer.b.(i));
  }

let inverse t =
  if Array.exists (fun v -> v = 0.) t.a then None
  else
    Some
      {
        a = Array.map (fun v -> 1. /. v) t.a;
        b = Array.mapi (fun i v -> -.v /. t.a.(i)) t.b;
      }

let pp ppf t =
  Format.fprintf ppf "T(a=%a, b=%a)" Point.pp t.a Point.pp t.b
