lib/dsp/dft.mli: Cpx
