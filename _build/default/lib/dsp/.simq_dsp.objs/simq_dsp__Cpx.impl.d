lib/dsp/cpx.ml: Array Complex Float Format Printf
