lib/dsp/spectrum.ml: Array Cpx Fft
