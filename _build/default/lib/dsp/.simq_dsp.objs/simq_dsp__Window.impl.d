lib/dsp/window.ml: Array Cpx Fft Float Format
