lib/dsp/spectrum.mli: Cpx
