lib/dsp/convolution.ml: Array Cpx Fft
