lib/dsp/cpx.mli: Complex Format
