lib/dsp/window.mli: Cpx Format
