lib/dsp/dft.ml: Array Cpx Float
