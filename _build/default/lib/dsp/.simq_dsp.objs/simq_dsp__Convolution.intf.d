lib/dsp/convolution.mli: Cpx
