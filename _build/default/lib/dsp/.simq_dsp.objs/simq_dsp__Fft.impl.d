lib/dsp/fft.ml: Array Cpx Float
