lib/dsp/fft.mli: Cpx
