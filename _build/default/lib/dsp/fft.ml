let is_power_of_two n = n > 0 && n land (n - 1) = 0

let next_power_of_two n =
  if n <= 0 then invalid_arg "Fft.next_power_of_two";
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

(* In-place iterative radix-2 Cooley-Tukey, unnormalised:
   computes Σ_t x_t e^(sign·2π·t·f·j / n). *)
let fft_pow2_inplace ~sign (x : Cpx.t array) =
  let n = Array.length x in
  assert (is_power_of_two n);
  (* Bit-reversal permutation. *)
  let j = ref 0 in
  for i = 0 to n - 2 do
    if i < !j then begin
      let tmp = x.(i) in
      x.(i) <- x.(!j);
      x.(!j) <- tmp
    end;
    let m = ref (n lsr 1) in
    while !m >= 1 && !j land !m <> 0 do
      j := !j lxor !m;
      m := !m lsr 1
    done;
    j := !j lor !m
  done;
  (* Butterflies. *)
  let len = ref 2 in
  while !len <= n do
    let half = !len / 2 in
    let theta = sign *. 2. *. Float.pi /. float_of_int !len in
    let wstep = Cpx.exp_i theta in
    let base = ref 0 in
    while !base < n do
      let w = ref Cpx.one in
      for k = 0 to half - 1 do
        let u = x.(!base + k) in
        let v = Cpx.mul x.(!base + k + half) !w in
        x.(!base + k) <- Cpx.add u v;
        x.(!base + k + half) <- Cpx.sub u v;
        w := Cpx.mul !w wstep
      done;
      base := !base + !len
    done;
    len := !len * 2
  done

let fft_pow2 ~sign x =
  let y = Array.copy x in
  fft_pow2_inplace ~sign y;
  y

(* Bluestein's chirp-z algorithm for arbitrary n, unnormalised.
   Uses m² mod 2n when forming chirp angles to keep the argument small:
   e^(sign·π·m²·j / n) has period 2n in m². *)
let bluestein ~sign x =
  let n = Array.length x in
  let chirp m =
    let m2 = m * m mod (2 * n) in
    Cpx.exp_i (sign *. Float.pi *. float_of_int m2 /. float_of_int n)
  in
  let m = next_power_of_two ((2 * n) - 1) in
  let a = Array.make m Cpx.zero in
  for t = 0 to n - 1 do
    a.(t) <- Cpx.mul x.(t) (chirp t)
  done;
  let b = Array.make m Cpx.zero in
  b.(0) <- Cpx.one;
  for t = 1 to n - 1 do
    let v = Cpx.conj (chirp t) in
    b.(t) <- v;
    b.(m - t) <- v
  done;
  fft_pow2_inplace ~sign:(-1.) a;
  fft_pow2_inplace ~sign:(-1.) b;
  let c = Array.map2 Cpx.mul a b in
  (* Unnormalised inverse of the pow2 transform. *)
  Array.iteri (fun idx v -> c.(idx) <- Cpx.conj v) c;
  fft_pow2_inplace ~sign:(-1.) c;
  let inv_m = 1. /. float_of_int m in
  Array.init n (fun f -> Cpx.mul (chirp f) (Cpx.scale inv_m (Cpx.conj c.(f))))

let transform ~sign x =
  let n = Array.length x in
  if n = 0 then [||]
  else begin
    let y = if is_power_of_two n then fft_pow2 ~sign x else bluestein ~sign x in
    let scale = 1. /. sqrt (float_of_int n) in
    Array.map (Cpx.scale scale) y
  end

let fft x = transform ~sign:(-1.) x
let ifft x = transform ~sign:1. x
let fft_real x = fft (Cpx.of_real_array x)
