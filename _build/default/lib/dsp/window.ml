type t = { weights : float array }

let normalise name weights =
  if Array.length weights = 0 then invalid_arg (name ^ ": empty window");
  Array.iter
    (fun w ->
      if not (Float.is_finite w) then invalid_arg (name ^ ": non-finite weight"))
    weights;
  let total = Array.fold_left ( +. ) 0. weights in
  if Float.abs total < 1e-12 then invalid_arg (name ^ ": weights sum to zero");
  { weights = Array.map (fun w -> w /. total) weights }

let uniform m =
  if m <= 0 then invalid_arg "Window.uniform";
  { weights = Array.make m (1. /. float_of_int m) }

let triangular m =
  if m <= 0 then invalid_arg "Window.triangular";
  let centre = float_of_int (m - 1) /. 2. in
  let raw =
    Array.init m (fun idx -> centre +. 1. -. Float.abs (float_of_int idx -. centre))
  in
  normalise "Window.triangular" raw

let ascending m =
  if m <= 0 then invalid_arg "Window.ascending";
  (* weights.(0) multiplies the current day in a trailing window, so the
     largest weight sits at index 0. *)
  let raw = Array.init m (fun idx -> float_of_int (m - idx)) in
  normalise "Window.ascending" raw

let exponential ~alpha m =
  if m <= 0 then invalid_arg "Window.exponential";
  if not (alpha > 0. && alpha <= 1.) then
    invalid_arg "Window.exponential: alpha must be in (0, 1]";
  let raw = Array.init m (fun idx -> alpha *. ((1. -. alpha) ** float_of_int idx)) in
  normalise "Window.exponential" raw

let custom weights = normalise "Window.custom" (Array.copy weights)
let width w = Array.length w.weights

let kernel n w =
  let m = width w in
  if m > n then invalid_arg "Window.kernel: window wider than signal";
  Array.init n (fun idx -> if idx < m then w.weights.(idx) else 0.)

let transfer n w =
  let padded = kernel n w in
  Cpx.scale_array (sqrt (float_of_int n)) (Fft.fft_real padded)

let pp ppf w =
  Format.fprintf ppf "window[%a]"
    (Format.pp_print_seq ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
       Format.pp_print_float)
    (Array.to_seq w.weights)
