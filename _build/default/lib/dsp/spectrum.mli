(** Signal energy, Parseval's relation, and coefficient-prefix helpers
    (Eqs. 3, 7, 8 and the k-index cut-off of Section 4). *)

(** [energy x] is [Σ |x_t|²] (Eq. 3). *)
val energy : Cpx.t array -> float

(** [energy_real x] is the energy of a real signal. *)
val energy_real : float array -> float

(** [distance x y] is the Euclidean distance between two complex vectors,
    [sqrt (Σ |x_f - y_f|²)]. By Parseval it is the same in the time and
    frequency domains (Eq. 8). Raises [Invalid_argument] on length
    mismatch. *)
val distance : Cpx.t array -> Cpx.t array -> float

(** [prefix_distance k x y] is the distance restricted to the first [k]
    coefficients — the lower bound of Lemma 1; never exceeds
    [distance x y]. *)
val prefix_distance : int -> Cpx.t array -> Cpx.t array -> float

(** [distance_early_abandon ~threshold x y] computes [distance x y] but
    returns [None] as soon as the running sum proves the distance exceeds
    [threshold] — the optimised sequential scan of Section 5. Scanning in
    the frequency domain makes this effective because large coefficients
    come first. *)
val distance_early_abandon :
  threshold:float -> Cpx.t array -> Cpx.t array -> float option

(** [truncate k x] is the first [k] coefficients. *)
val truncate : int -> Cpx.t array -> Cpx.t array

(** [concentration k x] is the fraction of the energy of [x] carried by
    its first [k] DFT coefficients, in [0, 1]. The DFT's usefulness as an
    index key rests on this being close to 1 for small [k]. *)
val concentration : int -> float array -> float

val magnitudes : Cpx.t array -> float array
val phases : Cpx.t array -> float array
