(** Weight windows for moving averages.

    A window is a short vector of weights [w_1 … w_m]. The paper's m-day
    moving average uses the uniform window [1/m … 1/m]; trend-prediction
    variants weight recent days more, smoothing variants weight the
    centre more (Section 3.2). *)

type t = private {
  weights : float array;  (** [m] weights, finite, summing to 1. *)
}

(** [uniform m] is the equal-weight window of width [m].
    Raises [Invalid_argument] when [m <= 0]. *)
val uniform : int -> t

(** [triangular m] weights the centre of the window most, linearly
    decaying towards both ends; used for smoothing. *)
val triangular : int -> t

(** [ascending m] weights the most recent day most, linearly decaying
    towards the oldest; used for trend prediction. *)
val ascending : int -> t

(** [exponential ~alpha m] is the window [alpha·(1-alpha)^i] renormalised
    to sum to 1. Raises [Invalid_argument] unless [0 < alpha <= 1]. *)
val exponential : alpha:float -> int -> t

(** [custom weights] validates an arbitrary window: weights must be
    finite and sum to a non-zero total; they are renormalised to sum
    to 1. *)
val custom : float array -> t

val width : t -> int

(** [kernel n w] is the length-[n] circular-convolution kernel: the
    weights followed by zeros (the vector [m₃] of Example 1.1 padded to
    signal length). Raises [Invalid_argument] when [width w > n]. *)
val kernel : int -> t -> float array

(** [transfer n w] is the frequency response of [kernel n w]: its
    unnormalised DFT [H_f = Σ_t kernel_t e^(-2π·t·f·j/n)]. Multiplying a
    signal's DFT element-wise by [transfer n w] equals taking the
    circular moving average in the time domain, which is the
    transformation [T_mavg = (a, 0)] of Section 3.2. *)
val transfer : int -> t -> Cpx.t array

val pp : Format.formatter -> t -> unit
