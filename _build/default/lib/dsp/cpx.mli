(** Complex-number helpers on top of [Stdlib.Complex].

    All sequence-level helpers operate on [t array] values, the
    representation used throughout the DSP substrate. *)

type t = Complex.t

val zero : t
val one : t
val i : t

(** [make re im] is the complex number [re + im·j]. *)
val make : float -> float -> t

(** [of_float x] is the real number [x] viewed as a complex number. *)
val of_float : float -> t

(** [polar magnitude angle] is [magnitude·e^(angle·j)]. *)
val polar : float -> float -> t

val re : t -> float
val im : t -> float

(** [abs z] is the magnitude |z|. *)
val abs : t -> float

(** [angle z] is the phase of [z] in (-pi, pi]. *)
val angle : t -> float

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
val neg : t -> t
val conj : t -> t
val scale : float -> t -> t

(** [exp_i theta] is [e^(theta·j)]. *)
val exp_i : float -> t

(** [root_of_unity n k] is [e^(-2·pi·k·j / n)], the twiddle factor used by
    the forward transform. *)
val root_of_unity : int -> int -> t

(** [close ?eps a b] tests component-wise equality within [eps]
    (default [1e-9]). *)
val close : ?eps:float -> t -> t -> bool

(** [close_arrays ?eps xs ys] is true when both arrays have the same length
    and are element-wise [close]. *)
val close_arrays : ?eps:float -> t array -> t array -> bool

(** [of_real_array xs] lifts a real signal to a complex one. *)
val of_real_array : float array -> t array

(** [re_array zs] projects the real parts. *)
val re_array : t array -> float array

(** [im_array zs] projects the imaginary parts. *)
val im_array : t array -> float array

(** [abs_array zs] is the element-wise magnitude. *)
val abs_array : t array -> float array

(** [mul_arrays xs ys] is the element-to-element product (the [*] of the
    convolution-multiplication property). Raises [Invalid_argument] on
    length mismatch. *)
val mul_arrays : t array -> t array -> t array

(** [add_arrays xs ys] is the element-wise sum. *)
val add_arrays : t array -> t array -> t array

(** [sub_arrays xs ys] is the element-wise difference. *)
val sub_arrays : t array -> t array -> t array

(** [scale_array a zs] multiplies every element by the real factor [a]. *)
val scale_array : float -> t array -> t array

val pp : Format.formatter -> t -> unit
val pp_array : Format.formatter -> t array -> unit
