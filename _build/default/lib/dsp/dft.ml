let transform ~sign x =
  let n = Array.length x in
  if n = 0 then [||]
  else begin
    let scale = 1. /. sqrt (float_of_int n) in
    let base = sign *. 2. *. Float.pi /. float_of_int n in
    Array.init n (fun f ->
        let acc = ref Cpx.zero in
        for t = 0 to n - 1 do
          let w = Cpx.exp_i (base *. float_of_int (t * f)) in
          acc := Cpx.add !acc (Cpx.mul x.(t) w)
        done;
        Cpx.scale scale !acc)
  end

let dft x = transform ~sign:(-1.) x
let idft x = transform ~sign:1. x
let dft_real x = dft (Cpx.of_real_array x)

let coefficients k x =
  let n = Array.length x in
  if k > n then invalid_arg "Dft.coefficients: k exceeds signal length";
  Array.sub (dft_real x) 0 k
