(** Fast Fourier Transform with the same unitary [1/sqrt n] convention
    as {!Dft}.

    Power-of-two lengths use an iterative radix-2 Cooley–Tukey; every
    other length goes through Bluestein's chirp-z algorithm, so the
    transform is O(n log n) for arbitrary [n] and agrees with {!Dft}
    within rounding error. *)

(** [fft x] is the forward transform. *)
val fft : Cpx.t array -> Cpx.t array

(** [ifft x] is the inverse transform; [ifft (fft x) = x] up to
    rounding. *)
val ifft : Cpx.t array -> Cpx.t array

(** [fft_real x] is the forward transform of a real signal. *)
val fft_real : float array -> Cpx.t array

(** [is_power_of_two n] is true when [n] is a positive power of two. *)
val is_power_of_two : int -> bool

(** [next_power_of_two n] is the smallest power of two that is [>= n].
    Raises [Invalid_argument] for [n <= 0]. *)
val next_power_of_two : int -> int
