type t = Complex.t

let zero = Complex.zero
let one = Complex.one
let i = Complex.i
let make re im : t = { Complex.re; im }
let of_float x = make x 0.
let polar m a = Complex.polar m a
let re (z : t) = z.Complex.re
let im (z : t) = z.Complex.im
let abs = Complex.norm
let angle = Complex.arg
let add = Complex.add
let sub = Complex.sub
let mul = Complex.mul
let div = Complex.div
let neg = Complex.neg
let conj = Complex.conj
let scale a (z : t) = { Complex.re = a *. z.Complex.re; im = a *. z.Complex.im }
let exp_i theta = make (cos theta) (sin theta)

let root_of_unity n k =
  let theta = -2. *. Float.pi *. float_of_int k /. float_of_int n in
  exp_i theta

let close ?(eps = 1e-9) a b =
  Float.abs (re a -. re b) <= eps && Float.abs (im a -. im b) <= eps

let close_arrays ?(eps = 1e-9) xs ys =
  Array.length xs = Array.length ys
  && Array.for_all2 (fun a b -> close ~eps a b) xs ys

let of_real_array xs = Array.map of_float xs
let re_array zs = Array.map re zs
let im_array zs = Array.map im zs
let abs_array zs = Array.map abs zs

let map2 name f xs ys =
  if Array.length xs <> Array.length ys then
    invalid_arg (Printf.sprintf "Cpx.%s: length mismatch (%d vs %d)" name
                   (Array.length xs) (Array.length ys));
  Array.map2 f xs ys

let mul_arrays xs ys = map2 "mul_arrays" mul xs ys
let add_arrays xs ys = map2 "add_arrays" add xs ys
let sub_arrays xs ys = map2 "sub_arrays" sub xs ys
let scale_array a zs = Array.map (scale a) zs
let pp ppf z = Format.fprintf ppf "%g%+gj" (re z) (im z)

let pp_array ppf zs =
  Format.fprintf ppf "[|%a|]"
    (Format.pp_print_seq ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ") pp)
    (Array.to_seq zs)
