(** The Discrete Fourier Transform, direct O(n²) evaluation.

    Both directions carry the symmetric [1/sqrt n] normalisation used by
    the paper (Eq. 1 and 2), so the transform is unitary and Parseval's
    relation holds with no extra factor:

    {v X_f = (1/sqrt n) Σ_t x_t e^(-2π·t·f·j / n)
      x_t = (1/sqrt n) Σ_f X_f e^(+2π·t·f·j / n) v}

    Use {!Fft} for large inputs; this module is the executable
    specification the FFT is tested against. *)

(** [dft x] is the forward transform of [x]. *)
val dft : Cpx.t array -> Cpx.t array

(** [idft x] is the inverse transform. [idft (dft x) = x] up to rounding. *)
val idft : Cpx.t array -> Cpx.t array

(** [dft_real x] is the forward transform of a real signal. *)
val dft_real : float array -> Cpx.t array

(** [coefficients k x] is the first [k] coefficients of [dft_real x];
    the prefix used as an index key. Raises [Invalid_argument] when
    [k > Array.length x]. *)
val coefficients : int -> float array -> Cpx.t array
