let energy x =
  Array.fold_left (fun acc z -> acc +. (Cpx.abs z ** 2.)) 0. x

let energy_real x = Array.fold_left (fun acc v -> acc +. (v *. v)) 0. x

let sq_norm z =
  let re = Cpx.re z and im = Cpx.im z in
  (re *. re) +. (im *. im)

let distance x y =
  if Array.length x <> Array.length y then
    invalid_arg "Spectrum.distance: length mismatch";
  let acc = ref 0. in
  for f = 0 to Array.length x - 1 do
    acc := !acc +. sq_norm (Cpx.sub x.(f) y.(f))
  done;
  sqrt !acc

let prefix_distance k x y =
  if k > Array.length x || k > Array.length y then
    invalid_arg "Spectrum.prefix_distance: k exceeds vector length";
  let acc = ref 0. in
  for f = 0 to k - 1 do
    acc := !acc +. sq_norm (Cpx.sub x.(f) y.(f))
  done;
  sqrt !acc

let distance_early_abandon ~threshold x y =
  if Array.length x <> Array.length y then
    invalid_arg "Spectrum.distance_early_abandon: length mismatch";
  let limit = threshold *. threshold in
  let n = Array.length x in
  let rec go f acc =
    if acc > limit then None
    else if f >= n then Some (sqrt acc)
    else go (f + 1) (acc +. sq_norm (Cpx.sub x.(f) y.(f)))
  in
  go 0 0.

let truncate k x =
  if k > Array.length x then invalid_arg "Spectrum.truncate";
  Array.sub x 0 k

let concentration k x =
  let total = energy_real x in
  if total = 0. then 1.
  else begin
    let coeffs = Fft.fft_real x in
    let kept = energy (truncate (min k (Array.length coeffs)) coeffs) in
    kept /. total
  end

let magnitudes = Cpx.abs_array
let phases x = Array.map Cpx.angle x
