let circular x y =
  let n = Array.length x in
  if Array.length y <> n then
    invalid_arg "Convolution.circular: length mismatch";
  Array.init n (fun idx ->
      let acc = ref Cpx.zero in
      for k = 0 to n - 1 do
        let j = ((idx - k) mod n + n) mod n in
        acc := Cpx.add !acc (Cpx.mul x.(k) y.(j))
      done;
      !acc)

let circular_fft x y =
  let n = Array.length x in
  if Array.length y <> n then
    invalid_arg "Convolution.circular_fft: length mismatch";
  if n = 0 then [||]
  else begin
    let product = Cpx.mul_arrays (Fft.fft x) (Fft.fft y) in
    let scaled = Cpx.scale_array (sqrt (float_of_int n)) product in
    Fft.ifft scaled
  end

let circular_real x y =
  Cpx.re_array (circular (Cpx.of_real_array x) (Cpx.of_real_array y))
