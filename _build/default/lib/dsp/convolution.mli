(** Circular convolution (Eq. 4):
    [Conv(x, y)_i = Σ_k x_k · y_((i-k) mod n)].

    With the unitary [1/sqrt n] DFT convention of {!Dft} the
    convolution-multiplication property reads
    [DFT (circular x y) = sqrt n · (DFT x * DFT y)] — the paper's Eq. 6
    omits the [sqrt n] factor, a common abuse of notation that is
    harmless for indexing but matters for numeric tests. *)

(** [circular x y] is the direct O(n²) circular convolution.
    Raises [Invalid_argument] on length mismatch. *)
val circular : Cpx.t array -> Cpx.t array -> Cpx.t array

(** [circular_fft x y] computes the same product via the FFT in
    O(n log n). *)
val circular_fft : Cpx.t array -> Cpx.t array -> Cpx.t array

(** [circular_real x y] is [circular] on real signals, projected back to
    the reals. *)
val circular_real : float array -> float array -> float array
