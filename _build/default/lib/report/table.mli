(** Plain-text experiment tables, aligned for terminals, with optional
    CSV emission so figures can be re-plotted elsewhere. *)

type t

(** [create ~title ~columns] starts a table. *)
val create : title:string -> columns:string list -> t

(** [add_row t cells] appends a row; cell count must match the column
    count. *)
val add_row : t -> string list -> unit

(** [print t] writes the aligned table to stdout. *)
val print : t -> unit

(** [to_csv t] is the table as CSV text (header + rows). *)
val to_csv : t -> string

(** [save_csv t path] writes {!to_csv} to a file. *)
val save_csv : t -> string -> unit
