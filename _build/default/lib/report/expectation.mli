(** Paper-vs-measured bookkeeping: every experiment declares the shape
    the paper reports and records what this reproduction measured, and
    the harness prints a verdict per claim. *)

type verdict = Holds | Partial | Fails

type claim = {
  experiment : string;  (** e.g. "Table 1" or "Figure 10" *)
  expectation : string;  (** the paper's qualitative claim *)
  measured : string;  (** what we observed *)
  verdict : verdict;
}

(** [check ~experiment ~expectation ~measured holds] builds a claim from
    a boolean test. *)
val check :
  experiment:string -> expectation:string -> measured:string -> bool -> claim

(** [partial ~experiment ~expectation ~measured] marks a claim that
    holds in direction but not in magnitude. *)
val partial :
  experiment:string -> expectation:string -> measured:string -> claim

(** [print_summary claims] prints one line per claim plus a tally. *)
val print_summary : claim list -> unit

val verdict_symbol : verdict -> string
