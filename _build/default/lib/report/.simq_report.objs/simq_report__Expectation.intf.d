lib/report/expectation.mli:
