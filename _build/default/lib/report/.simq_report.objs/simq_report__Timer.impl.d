lib/report/timer.ml: Array Float Format Unix
