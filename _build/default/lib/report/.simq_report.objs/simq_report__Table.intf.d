lib/report/table.mli:
