lib/report/table.ml: Buffer Char Filename Fun List Printf String Sys
