lib/report/timer.mli: Format
