lib/report/expectation.ml: List Printf
