type verdict = Holds | Partial | Fails

type claim = {
  experiment : string;
  expectation : string;
  measured : string;
  verdict : verdict;
}

let check ~experiment ~expectation ~measured holds =
  { experiment; expectation; measured;
    verdict = (if holds then Holds else Fails) }

let partial ~experiment ~expectation ~measured =
  { experiment; expectation; measured; verdict = Partial }

let verdict_symbol = function
  | Holds -> "[holds]"
  | Partial -> "[partial]"
  | Fails -> "[FAILS]"

let print_summary claims =
  print_endline "=== paper-vs-measured summary ===";
  List.iter
    (fun c ->
      Printf.printf "%-9s %-10s %s\n          measured: %s\n"
        (verdict_symbol c.verdict) c.experiment c.expectation c.measured)
    claims;
  let count v = List.length (List.filter (fun c -> c.verdict = v) claims) in
  Printf.printf "claims: %d hold, %d partial, %d fail\n\n" (count Holds)
    (count Partial) (count Fails)
