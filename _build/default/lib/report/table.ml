type t = {
  title : string;
  columns : string list;
  mutable rows : string list list;  (* reversed *)
}

let create ~title ~columns = { title; columns; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.columns then
    invalid_arg "Table.add_row: cell count mismatch";
  t.rows <- cells :: t.rows

let rows t = List.rev t.rows

(* Slug for CSV file names derived from the table title. *)
let slug title =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> Char.lowercase_ascii c
      | _ -> '-')
    title
  |> fun s ->
  (* Collapse runs of dashes and trim. *)
  let buf = Buffer.create (String.length s) in
  let last_dash = ref true in
  String.iter
    (fun c ->
      if c = '-' then begin
        if not !last_dash then Buffer.add_char buf '-';
        last_dash := true
      end
      else begin
        Buffer.add_char buf c;
        last_dash := false
      end)
    s;
  let s = Buffer.contents buf in
  if String.length s > 0 && s.[String.length s - 1] = '-' then
    String.sub s 0 (String.length s - 1)
  else s

let escape_csv cell =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') cell then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' cell) ^ "\""
  else cell

let to_csv t =
  let line row = String.concat "," (List.map escape_csv row) in
  String.concat "\n" (List.map line (t.columns :: rows t)) ^ "\n"

let save_csv t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_csv t))

let print t =
  let all = t.columns :: rows t in
  let widths =
    List.fold_left
      (fun acc row -> List.map2 (fun w c -> max w (String.length c)) acc row)
      (List.map (fun _ -> 0) t.columns)
      all
  in
  let print_row row =
    let cells =
      List.map2 (fun w c -> Printf.sprintf "%-*s" w c) widths row
    in
    print_endline ("  " ^ String.concat "  " cells)
  in
  print_endline t.title;
  print_row t.columns;
  print_row (List.map (fun w -> String.make w '-') widths);
  List.iter print_row (rows t);
  print_newline ();
  (* Optional side channel for plotting: SIMQ_CSV_DIR=out/ saves every
     printed table as CSV next to the terminal output. *)
  match Sys.getenv_opt "SIMQ_CSV_DIR" with
  | None -> ()
  | Some dir ->
    if Sys.file_exists dir && Sys.is_directory dir then
      save_csv t (Filename.concat dir (slug t.title ^ ".csv"))

