let time f =
  let start = Unix.gettimeofday () in
  let result = f () in
  (result, Unix.gettimeofday () -. start)

let time_median ~runs f =
  if runs <= 0 then invalid_arg "Timer.time_median: runs must be positive";
  let result = ref None in
  let samples =
    Array.init runs (fun _ ->
        let r, elapsed = time f in
        result := Some r;
        elapsed)
  in
  Array.sort Float.compare samples;
  let median = samples.(runs / 2) in
  match !result with
  | Some r -> (r, median)
  | None -> assert false

let pp_seconds ppf s =
  if s < 1e-3 then Format.fprintf ppf "%.0fus" (s *. 1e6)
  else if s < 1. then Format.fprintf ppf "%.2fms" (s *. 1e3)
  else if s < 60. then Format.fprintf ppf "%.3fs" s
  else begin
    let minutes = int_of_float (s /. 60.) in
    Format.fprintf ppf "%d:%06.3f" minutes (s -. (60. *. float_of_int minutes))
  end
