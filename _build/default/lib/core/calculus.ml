type 'o term =
  | Var of string
  | Const of 'o

type 'o formula =
  | Member of { term : 'o term; relation : string }
  | Sim of { left : 'o term; right : 'o term; bound : float }
  | Matches of { term : 'o term; pattern : 'o Pattern.t }
  | And of 'o formula * 'o formula
  | Or of 'o formula * 'o formula
  | Not of 'o formula

type 'o query = {
  head : string list;
  body : 'o formula;
}

type 'o database = (string * 'o array) list

let term_variables = function
  | Var v -> [ v ]
  | Const _ -> []

let free_variables formula =
  let seen = Hashtbl.create 8 in
  let out = ref [] in
  let add v =
    if not (Hashtbl.mem seen v) then begin
      Hashtbl.add seen v ();
      out := v :: !out
    end
  in
  let rec go = function
    | Member { term; _ } -> List.iter add (term_variables term)
    | Sim { left; right; _ } ->
      List.iter add (term_variables left);
      List.iter add (term_variables right)
    | Matches { term; _ } -> List.iter add (term_variables term)
    | And (a, b) | Or (a, b) ->
      go a;
      go b
    | Not a -> go a
  in
  go formula;
  List.rev !out

(* The set of variables guaranteed to be bound to database/constant
   objects by a positive occurrence: Member binds its variable; Matches
   binds when the pattern denotes a finite constant set; And unions;
   Or intersects (a variable must be bound on both branches); Not binds
   nothing. *)
let rec bound_variables = function
  | Member { term = Var v; _ } -> [ v ]
  | Member { term = Const _; _ } -> []
  | Matches { term = Var v; pattern } ->
    if Option.is_some (Pattern.is_constant pattern) then [ v ] else []
  | Matches { term = Const _; _ } -> []
  | Sim _ -> []
  | And (a, b) ->
    let bb = bound_variables b in
    bound_variables a @ List.filter (fun v -> not (List.mem v (bound_variables a))) bb
  | Or (a, b) ->
    let bb = bound_variables b in
    List.filter (fun v -> List.mem v bb) (bound_variables a)
  | Not _ -> []

let range_restricted q =
  let bound = bound_variables q.body in
  let needed = q.head @ free_variables q.body in
  List.for_all (fun v -> List.mem v bound) needed

let pp_term pp_obj ppf = function
  | Var v -> Format.pp_print_string ppf v
  | Const c -> pp_obj ppf c

let rec pp_formula pp_obj ppf = function
  | Member { term; relation } ->
    Format.fprintf ppf "%a ∈ %s" (pp_term pp_obj) term relation
  | Sim { left; right; bound } ->
    Format.fprintf ppf "%a ≈[%g] %a" (pp_term pp_obj) left bound
      (pp_term pp_obj) right
  | Matches { term; pattern } ->
    Format.fprintf ppf "%a : %a" (pp_term pp_obj) term (Pattern.pp pp_obj)
      pattern
  | And (a, b) ->
    Format.fprintf ppf "(%a ∧ %a)" (pp_formula pp_obj) a (pp_formula pp_obj) b
  | Or (a, b) ->
    Format.fprintf ppf "(%a ∨ %a)" (pp_formula pp_obj) a (pp_formula pp_obj) b
  | Not a -> Format.fprintf ppf "¬%a" (pp_formula pp_obj) a

let rec formula_constants = function
  | Member { term = Const c; _ } | Matches { term = Const c; _ } -> [ c ]
  | Member _ -> []
  | Matches { pattern; _ } -> (
    match Pattern.is_constant pattern with
    | Some cs -> cs
    | None -> [])
  | Sim { left; right; _ } ->
    (match left with Const c -> [ c ] | Var _ -> [])
    @ (match right with Const c -> [ c ] | Var _ -> [])
  | And (a, b) | Or (a, b) -> formula_constants a @ formula_constants b
  | Not a -> formula_constants a

let eval ~equal ~similar ~database q =
  if not (range_restricted q) then
    Error "query is not range-restricted: every variable must be bound by a \
           positive relation membership or constant pattern"
  else begin
    let missing =
      let rec relations = function
        | Member { relation; _ } -> [ relation ]
        | Sim _ | Matches _ -> []
        | And (a, b) | Or (a, b) -> relations a @ relations b
        | Not a -> relations a
      in
      List.filter
        (fun r -> not (List.mem_assoc r database))
        (relations q.body)
    in
    match missing with
    | r :: _ -> Error (Printf.sprintf "unknown relation %S" r)
    | [] ->
      let active_domain =
        let from_db = List.concat_map (fun (_, os) -> Array.to_list os) database in
        let constants = formula_constants q.body in
        List.fold_left
          (fun acc o -> if List.exists (equal o) acc then acc else o :: acc)
          [] (from_db @ constants)
        |> List.rev
      in
      let variables = free_variables q.body in
      let lookup env v =
        match List.assoc_opt v env with
        | Some o -> o
        | None -> invalid_arg ("Calculus.eval: unbound variable " ^ v)
      in
      let value env = function
        | Var v -> lookup env v
        | Const c -> c
      in
      let rec holds env = function
        | Member { term; relation } ->
          let o = value env term in
          Array.exists (equal o) (List.assoc relation database)
        | Sim { left; right; bound } ->
          similar ~bound (value env left) (value env right)
        | Matches { term; pattern } ->
          Pattern.matches ~equal pattern (value env term)
        | And (a, b) -> holds env a && holds env b
        | Or (a, b) -> holds env a || holds env b
        | Not a -> not (holds env a)
      in
      (* Enumerate assignments over the active domain. *)
      let results = ref [] in
      let rec assign env = function
        | [] ->
          if holds env q.body then begin
            let tuple = List.map (lookup env) q.head in
            if
              not
                (List.exists
                   (fun existing -> List.for_all2 equal existing tuple)
                   !results)
            then results := tuple :: !results
          end
        | v :: rest ->
          List.iter (fun o -> assign ((v, o) :: env) rest) active_domain
      in
      (* Head variables not occurring in the body would be unbound; the
         range-restriction check already rejects them. *)
      assign [] variables;
      Ok (List.rev !results)
  end
