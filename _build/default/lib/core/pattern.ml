type 'o t =
  | Const of 'o
  | Any
  | One_of of 'o list
  | Filter of { name : string; pred : 'o -> bool }
  | Union of 'o t * 'o t

let rec matches ~equal p x =
  match p with
  | Const c -> equal c x
  | Any -> true
  | One_of cs -> List.exists (fun c -> equal c x) cs
  | Filter { pred; _ } -> pred x
  | Union (a, b) -> matches ~equal a x || matches ~equal b x

let denotation ~equal ~universe p =
  let rec constants = function
    | Const c -> [ c ]
    | One_of cs -> cs
    | Any | Filter _ -> []
    | Union (a, b) -> constants a @ constants b
  in
  let from_universe = List.filter (matches ~equal p) universe in
  let extra =
    List.filter
      (fun c -> not (List.exists (equal c) from_universe))
      (constants p)
  in
  from_universe @ extra

let rec is_constant = function
  | Const c -> Some [ c ]
  | One_of cs -> Some cs
  | Any | Filter _ -> None
  | Union (a, b) -> (
    match (is_constant a, is_constant b) with
    | Some xs, Some ys -> Some (xs @ ys)
    | _ -> None)

let rec pp pp_obj ppf = function
  | Const c -> Format.fprintf ppf "const %a" pp_obj c
  | Any -> Format.fprintf ppf "any"
  | One_of cs ->
    Format.fprintf ppf "one-of {%a}"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
         pp_obj)
      cs
  | Filter { name; _ } -> Format.fprintf ppf "filter %s" name
  | Union (a, b) ->
    Format.fprintf ppf "(%a | %a)" (pp pp_obj) a (pp pp_obj) b
