module Heap = Simq_pqueue.Heap

exception Budget_exceeded

type 'o witness = {
  distance : float;
  cost : float;
  left_applied : string list;
  right_applied : string list;
  residual : float;
}

(* Uniform-cost search over pairs of transformed objects. The heap is
   keyed by accumulated transformation cost; since d0 >= 0, once the
   accumulated cost alone exceeds the best distance found so far (or the
   bound), no later state can improve on it. *)
let witness ?bound ?(max_expansions = 10_000) ~transformations ~d0 x y =
  let initial = d0 x y in
  let bound =
    match bound with
    | Some b ->
      if b < 0. then invalid_arg "Similarity: negative bound";
      b
    | None -> initial
  in
  let best =
    ref
      {
        distance = initial;
        cost = 0.;
        left_applied = [];
        right_applied = [];
        residual = initial;
      }
  in
  let visited : ('o * 'o, float) Hashtbl.t = Hashtbl.create 256 in
  let frontier = Heap.create () in
  Heap.push frontier 0. (x, y, [], []);
  Hashtbl.replace visited (x, y) 0.;
  let expansions = ref 0 in
  let rec drain () =
    match Heap.pop_min frontier with
    | None -> ()
    | Some (cost, (x', y', left, right)) ->
      if cost > bound || cost >= !best.distance then ()
      else begin
        (match Hashtbl.find_opt visited (x', y') with
        | Some known when known < cost -> drain () (* stale entry *)
        | _ ->
          incr expansions;
          if !expansions > max_expansions then raise Budget_exceeded;
          let residual = d0 x' y' in
          if cost +. residual < !best.distance then
            best :=
              {
                distance = cost +. residual;
                cost;
                left_applied = List.rev left;
                right_applied = List.rev right;
                residual;
              };
          List.iter
            (fun t ->
              let cost' = cost +. Transformation.cost t in
              if cost' <= bound && cost' < !best.distance then begin
                let push state names_key =
                  match Hashtbl.find_opt visited names_key with
                  | Some known when known <= cost' -> ()
                  | _ ->
                    Hashtbl.replace visited names_key cost';
                    Heap.push frontier cost' state
                in
                let lx = Transformation.apply t x' in
                push (lx, y', Transformation.name t :: left, right) (lx, y');
                let ry = Transformation.apply t y' in
                push (x', ry, left, Transformation.name t :: right) (x', ry)
              end)
            transformations;
          drain ())
      end
  in
  drain ();
  !best

let distance ?bound ?max_expansions ~transformations ~d0 x y =
  (witness ?bound ?max_expansions ~transformations ~d0 x y).distance

let similar ?max_expansions ~transformations ~d0 ~bound x y =
  (witness ~bound ?max_expansions ~transformations ~d0 x y).distance <= bound
