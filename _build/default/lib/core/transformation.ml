type 'o t = {
  name : string;
  cost : float;
  apply : 'o -> 'o;
}

let create ~name ~cost apply =
  if not (Float.is_finite cost) || cost < 0. then
    invalid_arg "Transformation.create: cost must be finite and non-negative";
  { name; cost; apply }

let identity = { name = "id"; cost = 0.; apply = Fun.id }

let compose f g =
  {
    name = f.name ^ "∘" ^ g.name;
    cost = f.cost +. g.cost;
    apply = (fun x -> f.apply (g.apply x));
  }

let apply t x = t.apply x
let cost t = t.cost
let name t = t.name
let pp ppf t = Format.fprintf ppf "%s@%g" t.name t.cost
