(** The pattern language [P]: expressions denoting sets of data objects.

    The paper's implementation studies “the trivial pattern language
    where a pattern expression specifies either a given constant data
    object, or every object in the database”; {!Const} and {!Any} are
    exactly those two, and unions and named predicate filters round the
    language out to something a query surface can target. *)

type 'o t =
  | Const of 'o  (** exactly one given object *)
  | Any  (** every object in the database *)
  | One_of of 'o list  (** a finite set of constants *)
  | Filter of { name : string; pred : 'o -> bool }
      (** every object satisfying a named predicate *)
  | Union of 'o t * 'o t

(** [matches ~equal p x] decides membership of [x] in the set denoted by
    [p]. *)
val matches : equal:('o -> 'o -> bool) -> 'o t -> 'o -> bool

(** [denotation ~equal ~universe p] lists the members of [p] drawn from
    [universe] (constants not present in the universe are still
    included — a pattern may denote new objects). *)
val denotation : equal:('o -> 'o -> bool) -> universe:'o list -> 'o t -> 'o list

(** [is_constant p] is [Some objects] when [p] denotes a finite set
    independent of the database — the case the paper evaluates without
    touching the index. *)
val is_constant : 'o t -> 'o list option

val pp : (Format.formatter -> 'o -> unit) -> Format.formatter -> 'o t -> unit
