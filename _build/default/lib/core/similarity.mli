(** The similarity distance of Eq. 10: transformations may be applied to
    either side (or both), and each application adds its cost:

    {v D(x, y) = min ( D0(x, y),
                   min_T  (cost T  + D(T x, y)),
                   min_T  (cost T  + D(x, T y)),
                   min_T1,T2 (cost T1 + cost T2 + D(T1 x, T2 y)) ) v}

    Computed by uniform-cost search over pairs of transformed objects.
    Every expansion is pruned against the cost bound, which defaults to
    [d0 x y] — the paper suggests bounding total transformation cost by
    a quantity “proportional to the Euclidean distance between the two
    original series”, and [D <= D0] always holds (the empty
    transformation sequence). *)

exception Budget_exceeded
(** Raised when the search exceeds [max_expansions]; with zero-cost
    transformations generating infinitely many distinct objects the
    exact Eq. 10 minimum may be undecidable, and this reports that
    honestly. *)

type 'o witness = {
  distance : float;  (** the Eq. 10 distance *)
  cost : float;  (** total transformation cost spent *)
  left_applied : string list;  (** transformation names applied to x *)
  right_applied : string list;  (** transformation names applied to y *)
  residual : float;  (** D0 between the two transformed objects *)
}

(** [distance ?bound ?max_expansions ~transformations ~d0 x y] is the
    Eq. 10 distance capped at [bound]: when every transformation path
    within the bound is worse than [bound], the result is [min bound
    (d0 x y)]-like — concretely, the best value found, never exceeding
    [d0 x y]. [max_expansions] defaults to 10_000. *)
val distance :
  ?bound:float ->
  ?max_expansions:int ->
  transformations:'o Transformation.t list ->
  d0:('o -> 'o -> float) ->
  'o ->
  'o ->
  float

(** [witness ?bound ?max_expansions ~transformations ~d0 x y] also
    reports which transformations achieved the minimum. *)
val witness :
  ?bound:float ->
  ?max_expansions:int ->
  transformations:'o Transformation.t list ->
  d0:('o -> 'o -> float) ->
  'o ->
  'o ->
  'o witness

(** [similar ?max_expansions ~transformations ~d0 ~bound x y] is the
    framework's cost-bounded predicate: can [x] be brought within
    distance 0 of… — concretely, is there a transformation assignment
    with [total cost + D0 residual <= bound]? *)
val similar :
  ?max_expansions:int ->
  transformations:'o Transformation.t list ->
  d0:('o -> 'o -> float) ->
  bound:float ->
  'o ->
  'o ->
  bool
