(** The transformation component of the framework: a similarity query
    system is a pattern language [P], a transformation rule language [T]
    and a query language; an object [A] is similar to [B] when [A] can be
    reduced to [B] by a sequence of transformations from [T], each
    carrying a non-negative cost.

    This module is domain-independent: a transformation is any
    cost-carrying endomorphism of the object space. The concrete rule
    languages of this repository — linear transformations [(a, b)] on
    feature spaces and rewrite rules on strings — both lower to this
    interface. *)

type 'o t = private {
  name : string;
  cost : float;
  apply : 'o -> 'o;
}

(** [create ~name ~cost apply] validates that [cost] is finite and
    non-negative. *)
val create : name:string -> cost:float -> ('o -> 'o) -> 'o t

(** [identity] is the zero-cost transformation [T_i] with
    [apply = Fun.id]. *)
val identity : 'o t

(** [compose f g] applies [g] first; costs add, names join as
    ["f∘g"]. *)
val compose : 'o t -> 'o t -> 'o t

(** [apply t x]. *)
val apply : 'o t -> 'o -> 'o

val cost : 'o t -> float
val name : 'o t -> string
val pp : Format.formatter -> 'o t -> unit
