lib/core/eval.ml: Array Float List Pattern Similarity Transformation
