lib/core/calculus.mli: Format Pattern
