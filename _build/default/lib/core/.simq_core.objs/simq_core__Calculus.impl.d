lib/core/calculus.ml: Array Format Hashtbl List Option Pattern Printf
