lib/core/similarity.mli: Transformation
