lib/core/transformation.ml: Float Format Fun
