lib/core/transformation.mli: Format
