lib/core/eval.mli: Pattern Transformation
