lib/core/pattern.ml: Format List
