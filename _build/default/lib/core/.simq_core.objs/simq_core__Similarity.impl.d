lib/core/similarity.ml: Hashtbl List Simq_pqueue Transformation
