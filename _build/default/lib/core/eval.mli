(** Physical operators for similarity queries over in-memory collections
    of tagged objects. These are the index-free reference evaluators;
    the time-series instantiation accelerates the same queries with the
    k-index and must agree with them (tested property).

    Objects in query results always appear {e untransformed} — the
    transformation is part of the predicate ([o ∈ T(e)] with
    [D(o, q) < ε]), not of the output. *)

type 'o tagged = {
  id : int;
  obj : 'o;
}

type 'o hit = {
  item : 'o tagged;
  distance : float;  (** distance after transformation *)
}

(** [range ~d ?transform collection ~query ~epsilon] finds all objects
    [o] with [d (T o) query <= epsilon]. *)
val range :
  d:('o -> 'o -> float) ->
  ?transform:'o Transformation.t ->
  'o tagged array ->
  query:'o ->
  epsilon:float ->
  'o hit list

(** [range_pattern] additionally restricts the candidates to a pattern
    (the paper's [t(e)] with a non-trivial [e]). *)
val range_pattern :
  d:('o -> 'o -> float) ->
  equal:('o -> 'o -> bool) ->
  ?transform:'o Transformation.t ->
  'o tagged array ->
  pattern:'o Pattern.t ->
  query:'o ->
  epsilon:float ->
  'o hit list

(** [all_pairs ~d ?transform collection ~epsilon] is the self-join: all
    pairs [(a, b)] with [a.id < b.id] and [d (T a) (T b) <= epsilon]. *)
val all_pairs :
  d:('o -> 'o -> float) ->
  ?transform:'o Transformation.t ->
  'o tagged array ->
  epsilon:float ->
  ('o tagged * 'o tagged * float) list

(** [nearest ~d ?transform collection ~query ~k] is the [k] objects
    minimising [d (T o) query], closest first. *)
val nearest :
  d:('o -> 'o -> float) ->
  ?transform:'o Transformation.t ->
  'o tagged array ->
  query:'o ->
  k:int ->
  'o hit list

(** [similar_set ~transformations ~d0 collection ~query ~bound] is the
    framework's general predicate evaluated naively: every object whose
    Eq. 10 distance to [query] (searching over transformation sequences
    on both sides) stays within [bound]. *)
val similar_set :
  transformations:'o Transformation.t list ->
  d0:('o -> 'o -> float) ->
  ?max_expansions:int ->
  'o tagged array ->
  query:'o ->
  bound:float ->
  'o hit list
