(** The query language of the framework: a domain relational calculus
    extended with predicates that test whether an object can be
    transformed into another at bounded cost — “an extension of
    relational calculus with predicates that test whether an object [A]
    can be transformed into a member of the set of objects described by
    expression [e] using the transformation [t], at a cost bounded by
    [k]”.

    Queries are evaluated over finite named relations by enumeration of
    the active domain, which is sound because only {e range-restricted}
    formulas are accepted: every variable must be bound by a positive
    relation membership (or a finite pattern) before it is used, so
    answers never depend on objects outside the database and the given
    constants. *)

type 'o term =
  | Var of string
  | Const of 'o

type 'o formula =
  | Member of { term : 'o term; relation : string }  (** [t ∈ R] *)
  | Sim of { left : 'o term; right : 'o term; bound : float }
      (** the similarity predicate [left ≈ right] at cost ≤ [bound] *)
  | Matches of { term : 'o term; pattern : 'o Pattern.t }
      (** [t] belongs to the set denoted by a pattern expression *)
  | And of 'o formula * 'o formula
  | Or of 'o formula * 'o formula
  | Not of 'o formula

type 'o query = {
  head : string list;  (** output variables, in order *)
  body : 'o formula;
}

type 'o database = (string * 'o array) list

(** [free_variables f] in first-occurrence order. *)
val free_variables : 'o formula -> string list

(** [range_restricted q] checks, syntactically, that every variable of
    the query (head and body) is bound by a positive [Member], or by a
    [Matches] against a constant pattern, on every disjunctive branch;
    negation binds nothing. *)
val range_restricted : 'o query -> bool

(** [eval ~equal ~similar ~database q] is the list of head-variable
    tuples satisfying the body, deduplicated with [equal]. [similar]
    decides the [Sim] predicate — typically
    [Similarity.similar ~transformations ~d0].

    Errors: unknown relation names, or a query that is not
    range-restricted. The evaluation is the naive, complete one: every
    assignment of the query's variables to active-domain objects is
    tested. *)
val eval :
  equal:('o -> 'o -> bool) ->
  similar:(bound:float -> 'o -> 'o -> bool) ->
  database:'o database ->
  'o query ->
  ('o list list, string) result

val pp_formula :
  (Format.formatter -> 'o -> unit) -> Format.formatter -> 'o formula -> unit
