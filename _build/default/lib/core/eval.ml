type 'o tagged = {
  id : int;
  obj : 'o;
}

type 'o hit = {
  item : 'o tagged;
  distance : float;
}

let apply_opt transform x =
  match transform with
  | None -> x
  | Some t -> Transformation.apply t x

let range ~d ?transform collection ~query ~epsilon =
  if epsilon < 0. then invalid_arg "Eval.range: negative epsilon";
  Array.fold_left
    (fun acc item ->
      let dist = d (apply_opt transform item.obj) query in
      if dist <= epsilon then { item; distance = dist } :: acc else acc)
    [] collection
  |> List.rev

let range_pattern ~d ~equal ?transform collection ~pattern ~query ~epsilon =
  let filtered =
    Array.of_list
      (List.filter
         (fun item -> Pattern.matches ~equal pattern item.obj)
         (Array.to_list collection))
  in
  range ~d ?transform filtered ~query ~epsilon

let all_pairs ~d ?transform collection ~epsilon =
  if epsilon < 0. then invalid_arg "Eval.all_pairs: negative epsilon";
  let transformed =
    Array.map (fun item -> (item, apply_opt transform item.obj)) collection
  in
  let n = Array.length transformed in
  let acc = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let item_i, oi = transformed.(i) and item_j, oj = transformed.(j) in
      if item_i.id <> item_j.id then begin
        let dist = d oi oj in
        if dist <= epsilon then acc := (item_i, item_j, dist) :: !acc
      end
    done
  done;
  List.rev !acc

let nearest ~d ?transform collection ~query ~k =
  if k <= 0 then invalid_arg "Eval.nearest: k must be positive";
  Array.to_list collection
  |> List.map (fun item ->
         { item; distance = d (apply_opt transform item.obj) query })
  |> List.sort (fun a b -> Float.compare a.distance b.distance)
  |> List.filteri (fun i _ -> i < k)

let similar_set ~transformations ~d0 ?max_expansions collection ~query ~bound =
  Array.fold_left
    (fun acc item ->
      let dist =
        Similarity.distance ~bound ?max_expansions ~transformations ~d0
          item.obj query
      in
      if dist <= bound then { item; distance = dist } :: acc else acc)
    [] collection
  |> List.rev
