lib/experiments/bench_util.ml: Array Format List Random Simq_report Simq_workload
