lib/experiments/bench_util.mli: Simq_series
