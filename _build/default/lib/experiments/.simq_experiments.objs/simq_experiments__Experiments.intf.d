lib/experiments/experiments.mli: Simq_report
