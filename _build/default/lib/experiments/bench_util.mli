(** Shared measurement helpers for the experiment harness. *)

(** [time_per_query ~repeats f] runs [f] [repeats] times and returns the
    mean seconds per run (after one untimed warmup). *)
val time_per_query : repeats:int -> (unit -> unit) -> float

(** [mean xs] of a non-empty list. *)
val mean : float list -> float

(** [fmt_time s] renders seconds compactly ([420us], [1.3ms], …). *)
val fmt_time : float -> string

(** [queries_for ~seed ~count batch] draws [count] query series by
    perturbing members of [batch] (±1.0 noise). *)
val queries_for :
  seed:int -> count:int -> Simq_series.Series.t array ->
  Simq_series.Series.t list
