(** Named safe transformations on time series, given both as their
    time-domain ground truth and as the frequency-domain stretch vector
    [a] of [T = (a, 0)] (Section 3.2 and Appendix A).

    All of them are pure stretches ([b = 0]), hence safe in the polar
    representation by Theorem 3; [Identity] and [Reverse] have real [a]
    and are also safe in the rectangular representation by Theorem 2. *)

type t =
  | Identity  (** [T_i = (1, 0)]; used by Figures 8–9 *)
  | Moving_average of int
      (** [T_mavg m]: the circular m-day moving average *)
  | Weighted_ma of Simq_dsp.Window.t
      (** moving average with arbitrary weights (trend prediction /
          smoothing variants of Section 3.2) *)
  | Reverse  (** [T_rev = (-1, 0)] of Example 2.2 *)
  | Warp of int  (** time stretch by an integer factor (Appendix A) *)

(** [apply_series t s] is the transformation in the time domain — the
    executable specification the index path is tested against. *)
val apply_series : t -> Simq_series.Series.t -> Simq_series.Series.t

(** [stretch t ~n] is the length-[n] frequency multiplier: applying [t]
    to a series of length [n] multiplies its [f]-th unitary DFT
    coefficient by [stretch.(f)]. For [Warp m] the result maps the
    coefficients of the original onto the first [n] coefficients of the
    length-[m·n] output. Raises [Invalid_argument] when a window is wider
    than [n] or a warp factor is < 1. *)
val stretch : t -> n:int -> Simq_dsp.Cpx.t array

(** [output_length t ~n] is the length of [apply_series t s] for an
    input of length [n]: [m·n] for [Warp m], [n] otherwise. A range
    query's series must have this length. *)
val output_length : t -> n:int -> int

val name : t -> string
val pp : Format.formatter -> t -> unit
