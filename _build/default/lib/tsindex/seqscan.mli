(** Sequential-scan baselines (Section 5, Figures 10–11).

    Scans run over the relation of Fourier coefficients, not the raw
    series: the DFT packs most of the energy into the first
    coefficients, so the early-abandoning variant can dismiss most
    sequences after a few terms. Page traffic is accounted against the
    backing relation. *)

type result = {
  answers : (Dataset.entry * float) list;
  full_computations : int;
      (** distance computations carried to completion *)
  coefficients_touched : int;
      (** total spectrum coefficients examined — the work an early
          abandon saves *)
}

(** [range_full dataset ?spec ~query ~epsilon] compares the query
    against every entry with no early abandoning (method (a) style). *)
val range_full :
  ?spec:Spec.t -> ?normalise_query:bool -> Dataset.t -> query:Simq_series.Series.t -> epsilon:float ->
  result

(** [range_early_abandon dataset ?spec ~query ~epsilon] stops each
    distance computation as soon as the running sum exceeds ε
    (method (b) style). Answers are identical to {!range_full}. *)
val range_early_abandon :
  ?spec:Spec.t -> ?normalise_query:bool -> Dataset.t -> query:Simq_series.Series.t -> epsilon:float ->
  result

(** [reference dataset ?spec ~query ~epsilon] is the plain time-domain
    brute force used as the test oracle. *)
val reference :
  ?spec:Spec.t -> ?normalise_query:bool -> Dataset.t -> query:Simq_series.Series.t -> epsilon:float ->
  (Dataset.entry * float) list
