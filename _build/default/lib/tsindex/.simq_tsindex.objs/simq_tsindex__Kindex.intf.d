lib/tsindex/kindex.mli: Dataset Feature Simq_dsp Simq_rtree Simq_series Spec
