lib/tsindex/ql.mli: Format Spec
