lib/tsindex/join.mli: Kindex Spec
