lib/tsindex/seqscan.ml: Array Dataset List Printf Simq_dsp Simq_series Simq_storage Spec
