lib/tsindex/kindex.ml: Array Dataset Feature Float Int List Option Printf Simq_dsp Simq_geometry Simq_rtree Simq_series Spec
