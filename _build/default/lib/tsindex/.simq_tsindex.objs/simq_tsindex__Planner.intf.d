lib/tsindex/planner.mli: Dataset Format Kindex Simq_series Spec
