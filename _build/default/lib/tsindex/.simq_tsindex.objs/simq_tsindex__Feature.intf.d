lib/tsindex/feature.mli: Dataset Simq_dsp Simq_geometry
