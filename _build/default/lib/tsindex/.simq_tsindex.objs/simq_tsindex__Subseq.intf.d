lib/tsindex/subseq.mli: Simq_series
