lib/tsindex/spec.ml: Array Format Printf Simq_dsp Simq_series
