lib/tsindex/dataset.mli: Simq_dsp Simq_series Simq_storage
