lib/tsindex/ql.ml: Format List Option Printf Simq_dsp Spec String
