lib/tsindex/feature.ml: Array Dataset Simq_geometry
