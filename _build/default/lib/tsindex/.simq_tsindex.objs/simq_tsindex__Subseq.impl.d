lib/tsindex/subseq.ml: Array Float List Option Printf Simq_dsp Simq_geometry Simq_rtree Simq_series
