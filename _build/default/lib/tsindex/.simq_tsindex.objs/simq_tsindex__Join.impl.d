lib/tsindex/join.ml: Array Dataset Feature Kindex List Simq_dsp Simq_series Spec
