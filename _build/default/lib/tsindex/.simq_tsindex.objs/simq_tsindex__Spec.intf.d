lib/tsindex/spec.mli: Format Simq_dsp Simq_series
