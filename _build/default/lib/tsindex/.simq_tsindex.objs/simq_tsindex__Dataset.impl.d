lib/tsindex/dataset.ml: Array Simq_dsp Simq_series Simq_storage
