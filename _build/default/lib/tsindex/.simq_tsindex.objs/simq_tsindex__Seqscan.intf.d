lib/tsindex/seqscan.mli: Dataset Simq_series Spec
