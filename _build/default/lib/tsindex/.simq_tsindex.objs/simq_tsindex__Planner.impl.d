lib/tsindex/planner.ml: Array Dataset Float Format Kindex Random Seqscan Simq_series Spec
