(** A small textual query language for similarity queries — the concrete
    surface of the framework's query component (an extension of
    relational calculus with cost-bounded similarity predicates),
    restricted to the three query classes the paper processes through
    the index.

    Grammar (keywords case-insensitive):

    {v
    query    ::= RANGE   FROM ident [USING t] QUERY ident EPS number
                         [MEAN number] [STD number]
               | NEAREST int FROM ident [USING t] QUERY ident
               | PAIRS   FROM ident [USING t] EPS number [METHOD m]
    t        ::= id | rev | mavg(int) | wma(int) | warp(int)
    m        ::= scan | scan-early | index
    v}

    Examples:

    {v
    RANGE FROM stocks USING mavg(20) QUERY ibm EPS 2.5
    NEAREST 5 FROM stocks USING rev QUERY ibm
    PAIRS FROM stocks USING mavg(20) EPS 1.2 METHOD index
    v} *)

type join_method = Scan_full | Scan_early | Index

type t =
  | Range of {
      source : string;
      spec : Spec.t;
      query : string;
      epsilon : float;
      mean_window : float option;  (** [MEAN w]: answer mean within ±w *)
      std_band : float option;  (** [STD f]: answer std within ×/÷ f *)
    }
  | Nearest of {
      k : int;
      source : string;
      spec : Spec.t;
      query : string;
    }
  | Pairs of {
      source : string;
      spec : Spec.t;
      epsilon : float;
      method_ : join_method;
    }

(** [parse text] is the query, or a human-readable error mentioning the
    offending token. *)
val parse : string -> (t, string) result

val pp : Format.formatter -> t -> unit
