module Coords = Simq_geometry.Coords

type config = {
  k : int;
  representation : Coords.representation;
}

let default = { k = 2; representation = Coords.Polar }

let validate config ~n =
  if config.k < 1 then invalid_arg "Feature.validate: k must be >= 1";
  if config.k >= n then
    invalid_arg "Feature.validate: k must be smaller than the series length"

let dims config = 2 + (2 * config.k)

let coefficients config (entry : Dataset.entry) =
  Array.sub entry.Dataset.spectrum 1 config.k

(* Feature dimensions first, mean/std last: the bulk loader tiles along
   the leading dimensions, and queries constrain the DFT features while
   leaving mean/std free, so the discriminating dimensions must lead. *)
let point config (entry : Dataset.entry) =
  let encoded =
    Coords.encode config.representation (coefficients config entry)
  in
  Array.append encoded [| entry.Dataset.mean; entry.Dataset.std |]
