(** The feature map of Section 5: a series becomes the index point

    {v [ c(X_1); c(X_2); …; c(X_k); mean; std ] v}

    where [X_1 … X_k] are DFT coefficients 1..k of the {e normal form}
    (coefficient 0 is identically zero and is thrown away) and [c]
    encodes each complex coefficient in two real dimensions, polar or
    rectangular. The paper's index is [k = 2] polar: six dimensions (it
    lists mean/std first; we store them last so the bulk loader tiles
    along the discriminating DFT dimensions — similarity queries leave
    mean and std unconstrained). *)

type config = {
  k : int;  (** number of DFT coefficients kept (from coefficient 1) *)
  representation : Simq_geometry.Coords.representation;
}

val default : config

(** [validate config ~n] checks [1 <= k < n]. *)
val validate : config -> n:int -> unit

(** [dims config] is [2 + 2k]. *)
val dims : config -> int

(** [coefficients config entry] is coefficients 1..k of the entry's
    normal-form spectrum — the complex features. *)
val coefficients : config -> Dataset.entry -> Simq_dsp.Cpx.t array

(** [point config entry] is the full index key. *)
val point : config -> Dataset.entry -> Simq_geometry.Point.t
