module Dsp = Simq_dsp
module Series = Simq_series.Series
module Ma = Simq_series.Moving_average
module Warp_op = Simq_series.Warp

type t =
  | Identity
  | Moving_average of int
  | Weighted_ma of Dsp.Window.t
  | Reverse
  | Warp of int

let apply_series t s =
  match t with
  | Identity -> s
  | Moving_average m -> Ma.circular (Dsp.Window.uniform m) s
  | Weighted_ma w -> Ma.circular w s
  | Reverse -> Series.reverse_sign s
  | Warp m -> Warp_op.expand m s

let stretch t ~n =
  match t with
  | Identity -> Array.make n Dsp.Cpx.one
  | Moving_average m -> Dsp.Window.transfer n (Dsp.Window.uniform m)
  | Weighted_ma w -> Dsp.Window.transfer n w
  | Reverse -> Array.make n (Dsp.Cpx.of_float (-1.))
  | Warp m ->
    let a = Warp_op.coefficients ~m ~n ~k:n in
    Dsp.Cpx.scale_array (1. /. sqrt (float_of_int m)) a

let output_length t ~n =
  match t with
  | Identity | Moving_average _ | Weighted_ma _ | Reverse -> n
  | Warp m ->
    if m < 1 then invalid_arg "Spec.output_length: warp factor < 1";
    m * n

let name = function
  | Identity -> "id"
  | Moving_average m -> Printf.sprintf "mavg%d" m
  | Weighted_ma w -> Printf.sprintf "wma%d" (Dsp.Window.width w)
  | Reverse -> "rev"
  | Warp m -> Printf.sprintf "warp%d" m

let pp ppf t = Format.pp_print_string ppf (name t)
