(** A small cost-based planner for range queries: Figure 12 shows the
    index winning only while the answer set is a minority of the
    relation, so a system should pick the access path from the
    predicted answer-set size. The prediction comes from an equi-width
    histogram of sampled pairwise normal-form distances. *)

type stats

(** [collect ?samples ?seed ?buckets dataset] samples pairwise distances
    between normal forms ([samples] pairs, default 2000) into an
    equi-width histogram (default 64 buckets). *)
val collect : ?samples:int -> ?seed:int -> ?buckets:int -> Dataset.t -> stats

(** [selectivity stats ~epsilon] is the estimated fraction of series
    within [epsilon] of a typical query, in [0, 1]; monotone in
    [epsilon], linear interpolation inside buckets. *)
val selectivity : stats -> epsilon:float -> float

(** [estimate_answers stats ~cardinality ~epsilon] scales the
    selectivity to an expected answer count. *)
val estimate_answers : stats -> cardinality:int -> epsilon:float -> float

type plan = Use_index | Use_scan

(** [choose ?scan_threshold stats ~cardinality ~epsilon] picks the access
    path: scan when the expected answer fraction exceeds
    [scan_threshold] (default 0.3, the paper's “one third of the
    relation” crossover). Returns the plan and the expected answer
    count. *)
val choose :
  ?scan_threshold:float -> stats -> cardinality:int -> epsilon:float ->
  plan * float

type result = {
  answers : (Dataset.entry * float) list;
  plan : plan;
  estimated_answers : float;
}

(** [range kindex stats ?spec ~query ~epsilon] plans and executes: the
    answers are identical whichever path runs (both are exact). *)
val range :
  ?spec:Spec.t ->
  Kindex.t ->
  stats ->
  query:Simq_series.Series.t ->
  epsilon:float ->
  result

val pp_plan : Format.formatter -> plan -> unit
