module Cpx = Simq_dsp.Cpx
module Series = Simq_series.Series
module Distance = Simq_series.Distance
module Relation = Simq_storage.Relation

type result = {
  answers : (Dataset.entry * float) list;
  full_computations : int;
  coefficients_touched : int;
}

let sq_norm z =
  let re = Cpx.re z and im = Cpx.im z in
  (re *. re) +. (im *. im)

(* The transformed spectrum of an entry, restricted to the first
   [limit] coefficients, produced lazily one coefficient at a time so
   early abandoning does not pay for the whole vector. *)
let transformed_coeff stretch (entry : Dataset.entry) f =
  Cpx.mul stretch.(f) entry.Dataset.spectrum.(f)

let check_query_length dataset spec query =
  let n = Dataset.series_length dataset in
  let expected = Spec.output_length spec ~n in
  if Series.length query <> expected then
    invalid_arg
      (Printf.sprintf "Seqscan: query length %d, expected %d"
         (Series.length query) expected)

(* Frequency-domain scan for the length-preserving transformations; the
   time-warp changes the series length, so its distances are computed in
   the time domain (same value by Parseval, no early-abandon benefit on
   the warped prefix). *)
let scan ~abandon ~normalise_query dataset spec query epsilon =
  check_query_length dataset spec query;
  if epsilon < 0. then invalid_arg "Seqscan: negative epsilon";
  let q = Dataset.prepare_query ~normalise:normalise_query query in
  let n = Dataset.series_length dataset in
  let limit = epsilon *. epsilon in
  let answers = ref [] in
  let full = ref 0 in
  let touched = ref 0 in
  let relation = Dataset.relation dataset in
  (match spec with
  | Spec.Warp _ ->
    Array.iter
      (fun (entry : Dataset.entry) ->
        ignore (Relation.get relation entry.Dataset.id);
        let transformed = Spec.apply_series spec entry.Dataset.normal in
        incr full;
        touched := !touched + Series.length transformed;
        let d =
          if abandon then
            Distance.euclidean_early_abandon ~threshold:epsilon transformed
              q.Dataset.normal
          else Some (Distance.euclidean transformed q.Dataset.normal)
        in
        match d with
        | Some d when d <= epsilon -> answers := (entry, d) :: !answers
        | _ -> ())
      (Dataset.entries dataset)
  | _ ->
    let stretch = Spec.stretch spec ~n in
    Array.iter
      (fun (entry : Dataset.entry) ->
        ignore (Relation.get relation entry.Dataset.id);
        let acc = ref 0. in
        let f = ref 0 in
        let abandoned = ref false in
        while (not !abandoned) && !f < n do
          let diff =
            Cpx.sub (transformed_coeff stretch entry !f) q.Dataset.spectrum.(!f)
          in
          acc := !acc +. sq_norm diff;
          incr touched;
          incr f;
          if abandon && !acc > limit then abandoned := true
        done;
        if not !abandoned then begin
          incr full;
          let d = sqrt !acc in
          if d <= epsilon then answers := (entry, d) :: !answers
        end)
      (Dataset.entries dataset));
  {
    answers =
      List.sort (fun (a, _) (b, _) -> compare a.Dataset.id b.Dataset.id)
        !answers;
    full_computations = !full;
    coefficients_touched = !touched;
  }

let range_full ?(spec = Spec.Identity) ?(normalise_query = true) dataset
    ~query ~epsilon =
  scan ~abandon:false ~normalise_query dataset spec query epsilon

let range_early_abandon ?(spec = Spec.Identity) ?(normalise_query = true)
    dataset ~query ~epsilon =
  scan ~abandon:true ~normalise_query dataset spec query epsilon

let reference ?(spec = Spec.Identity) ?(normalise_query = true) dataset ~query
    ~epsilon =
  check_query_length dataset spec query;
  let q = Dataset.prepare_query ~normalise:normalise_query query in
  Array.to_list (Dataset.entries dataset)
  |> List.filter_map (fun (entry : Dataset.entry) ->
         let d =
           Distance.euclidean
             (Spec.apply_series spec entry.Dataset.normal)
             q.Dataset.normal
         in
         if d <= epsilon then Some (entry, d) else None)
  |> List.sort (fun (a, _) (b, _) -> compare a.Dataset.id b.Dataset.id)
