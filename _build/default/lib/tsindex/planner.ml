module Distance = Simq_series.Distance

type stats = {
  bucket_width : float;
  counts : int array;  (* counts.(i): distances in [i·w, (i+1)·w) *)
  total : int;
}

let collect ?(samples = 2000) ?(seed = 42) ?(buckets = 64) dataset =
  if samples <= 0 then invalid_arg "Planner.collect: samples must be positive";
  if buckets <= 0 then invalid_arg "Planner.collect: buckets must be positive";
  let entries = Dataset.entries dataset in
  let n = Array.length entries in
  let state = Random.State.make [| seed |] in
  let distances =
    Array.init samples (fun _ ->
        let i = Random.State.int state n in
        let j = Random.State.int state n in
        Distance.euclidean entries.(i).Dataset.normal entries.(j).Dataset.normal)
  in
  let max_distance = Array.fold_left Float.max 0. distances in
  let bucket_width =
    if max_distance = 0. then 1. else max_distance /. float_of_int buckets
  in
  let counts = Array.make buckets 0 in
  Array.iter
    (fun d ->
      let idx = min (buckets - 1) (int_of_float (d /. bucket_width)) in
      counts.(idx) <- counts.(idx) + 1)
    distances;
  { bucket_width; counts; total = samples }

let selectivity stats ~epsilon =
  if epsilon < 0. then 0.
  else begin
    let buckets = Array.length stats.counts in
    let position = epsilon /. stats.bucket_width in
    let whole = int_of_float (Float.floor position) in
    let acc = ref 0. in
    for i = 0 to min (whole - 1) (buckets - 1) do
      acc := !acc +. float_of_int stats.counts.(i)
    done;
    if whole < buckets then begin
      let fraction = position -. Float.of_int whole in
      acc := !acc +. (fraction *. float_of_int stats.counts.(whole))
    end;
    Float.min 1. (!acc /. float_of_int stats.total)
  end

let estimate_answers stats ~cardinality ~epsilon =
  selectivity stats ~epsilon *. float_of_int cardinality

type plan = Use_index | Use_scan

let choose ?(scan_threshold = 0.3) stats ~cardinality ~epsilon =
  let expected = estimate_answers stats ~cardinality ~epsilon in
  let plan =
    if expected > scan_threshold *. float_of_int cardinality then Use_scan
    else Use_index
  in
  (plan, expected)

type result = {
  answers : (Dataset.entry * float) list;
  plan : plan;
  estimated_answers : float;
}

let range ?(spec = Spec.Identity) kindex stats ~query ~epsilon =
  let dataset = Kindex.dataset kindex in
  let plan, estimated_answers =
    choose stats ~cardinality:(Dataset.cardinality dataset) ~epsilon
  in
  let answers =
    match plan with
    | Use_index -> (Kindex.range ~spec kindex ~query ~epsilon).Kindex.answers
    | Use_scan ->
      (Seqscan.range_early_abandon ~spec dataset ~query ~epsilon).Seqscan.answers
  in
  { answers; plan; estimated_answers }

let pp_plan ppf = function
  | Use_index -> Format.pp_print_string ppf "index"
  | Use_scan -> Format.pp_print_string ppf "scan"
