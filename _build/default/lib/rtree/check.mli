(** Structural invariant checking for R*-trees; used by the test suite
    after randomised insert/delete workloads. *)

type violation = {
  where : string;
  message : string;
}

(** [violations t] inspects the whole tree and reports every violated
    invariant:
    - every child MBR is contained in its parent's MBR;
    - every node's MBR equals/contains the union of its entries;
    - all leaves are at depth 0 and levels decrease by one per step;
    - every non-root node holds between [min_fill] and [max_fill]
      entries; the root holds at most [max_fill];
    - [size t] equals the number of data entries reachable. *)
val violations : 'a Rstar.t -> violation list

(** [is_valid t] is [violations t = []]. *)
val is_valid : 'a Rstar.t -> bool

val pp_violation : Format.formatter -> violation -> unit
