(* Internal node representation shared by the R*-tree modules. Not part
   of the stable API: use Rstar, Bulk, Nn and Join instead. *)

open Simq_geometry

type 'a entry =
  | Child of 'a node
  | Data of { rect : Rect.t; value : 'a }
      (* data entries are rectangles; points are stored as degenerate
         rectangles (lo = hi), the only kind the point-level API
         creates *)

and 'a node = {
  mutable mbr : Rect.t;
  mutable entries : 'a entry list;
  level : int;  (* 0 = leaf; children of a level-l node have level l-1 *)
}

let entry_mbr = function
  | Child n -> n.mbr
  | Data { rect; _ } -> rect

let entry_count node = List.length node.entries
let is_leaf node = node.level = 0

let mbr_of_entries = function
  | [] -> invalid_arg "Node.mbr_of_entries: empty entry list"
  | e :: rest ->
    List.fold_left (fun acc e -> Rect.union acc (entry_mbr e)) (entry_mbr e) rest

let recompute_mbr node = node.mbr <- mbr_of_entries node.entries

let make ~level entries = { mbr = mbr_of_entries entries; entries; level }

let empty_leaf ~dims =
  (* A placeholder MBR; replaced on first insertion. *)
  {
    mbr = Rect.create ~lo:(Array.make dims 0.) ~hi:(Array.make dims 0.);
    entries = [];
    level = 0;
  }

let rec fold_data f acc node =
  List.fold_left
    (fun acc entry ->
      match entry with
      | Child child -> fold_data f acc child
      | Data { rect; value } -> f acc rect value)
    acc node.entries

