open Simq_geometry

type violation = {
  where : string;
  message : string;
}

let pp_violation ppf v = Format.fprintf ppf "%s: %s" v.where v.message

let violations t =
  let issues = ref [] in
  let report where message = issues := { where; message } :: !issues in
  let data_count = ref 0 in
  let root = Rstar.root t in
  let rec walk path (node : 'a Node.node) ~is_root =
    let where = Printf.sprintf "node %s (level %d)" path node.Node.level in
    let count = Node.entry_count node in
    if (not is_root) && count < Rstar.min_fill t then
      report where
        (Printf.sprintf "underfull: %d < min_fill %d" count (Rstar.min_fill t));
    if count > Rstar.max_fill t then
      report where
        (Printf.sprintf "overfull: %d > max_fill %d" count (Rstar.max_fill t));
    if node.Node.entries <> [] then begin
      let union = Node.mbr_of_entries node.Node.entries in
      if not (Rect.contains_rect node.Node.mbr union) then
        report where "MBR does not cover its entries"
    end;
    List.iteri
      (fun idx entry ->
        match entry with
        | Node.Child c ->
          if node.Node.level = 0 then report where "leaf holds a child node";
          if c.Node.level <> node.Node.level - 1 then
            report where
              (Printf.sprintf "child level %d under level %d" c.Node.level
                 node.Node.level);
          if not (Rect.contains_rect node.Node.mbr c.Node.mbr) then
            report where "child MBR escapes parent MBR";
          walk (Printf.sprintf "%s.%d" path idx) c ~is_root:false
        | Node.Data { rect; _ } ->
          incr data_count;
          if node.Node.level <> 0 then report where "data entry above leaf level";
          if not (Rect.contains_rect node.Node.mbr rect) then
            report where "data rectangle escapes leaf MBR")
      node.Node.entries
  in
  if Rstar.size t > 0 then walk "root" root ~is_root:true;
  if !data_count <> Rstar.size t then
    report "tree"
      (Printf.sprintf "size %d but %d data entries reachable" (Rstar.size t)
         !data_count);
  List.rev !issues

let is_valid t = violations t = []
