lib/rtree/nn.mli: Rstar Simq_geometry
