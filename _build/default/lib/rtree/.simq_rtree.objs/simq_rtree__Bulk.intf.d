lib/rtree/bulk.mli: Rstar Simq_geometry
