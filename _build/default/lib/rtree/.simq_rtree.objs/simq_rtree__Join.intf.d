lib/rtree/join.mli: Rstar Simq_geometry
