lib/rtree/node.ml: Array List Rect Simq_geometry
