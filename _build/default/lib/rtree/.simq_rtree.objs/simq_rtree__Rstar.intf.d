lib/rtree/rstar.mli: Node Simq_geometry
