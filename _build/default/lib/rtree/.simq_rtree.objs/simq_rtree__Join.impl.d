lib/rtree/join.ml: Array Linear_transform List Node Point Rect Rstar Simq_geometry
