lib/rtree/bulk.ml: Array Float List Node Rstar Simq_geometry
