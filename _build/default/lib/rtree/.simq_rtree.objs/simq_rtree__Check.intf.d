lib/rtree/check.mli: Format Rstar
