lib/rtree/nn.ml: Linear_transform List Node Point Rect Rstar Simq_geometry Simq_pqueue
