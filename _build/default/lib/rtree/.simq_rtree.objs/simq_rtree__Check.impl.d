lib/rtree/check.ml: Format List Node Printf Rect Rstar Simq_geometry
