lib/rtree/rstar.ml: Array Float Hashtbl List Node Point Queue Rect Region Simq_geometry
