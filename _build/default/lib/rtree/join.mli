(** Spatial joins over R*-trees (the all-pairs queries of Section 3 and
    the self-join experiment of Table 1).

    Two strategies are provided:
    - [index_nested_loop]: scan one side, pose a region query per object
      (methods c and d of Table 1 build the region from each sequence);
    - [synchronized]: descend both trees simultaneously, pruning pairs of
      subtrees whose (transformed, ε-inflated) MBRs do not intersect.

    The predicate hooks make the paper's transformed join (“apply T to
    both [a_i] and [b_j] before computing the predicate”) a one-liner. *)

(** [synchronized t1 t2 ~pair_overlaps ~emit ~init] folds [emit] over
    every pair of data points from [t1 × t2] that survives the pruning
    predicate [pair_overlaps] applied to (degenerate) MBR pairs along the
    descent. *)
val synchronized :
  'a Rstar.t ->
  'b Rstar.t ->
  pair_overlaps:(Simq_geometry.Rect.t -> Simq_geometry.Rect.t -> bool) ->
  emit:
    ('acc ->
     Simq_geometry.Point.t * 'a ->
     Simq_geometry.Point.t * 'b ->
     'acc) ->
  init:'acc ->
  'acc

(** [within_epsilon ?transform_left ?transform_right t1 t2 ~epsilon]
    joins on Euclidean point distance after applying the optional safe
    transformations to each side: pairs [(x, y)] with
    [|T1 x - T2 y| <= epsilon]. *)
val within_epsilon :
  ?transform_left:Simq_geometry.Linear_transform.t ->
  ?transform_right:Simq_geometry.Linear_transform.t ->
  'a Rstar.t ->
  'b Rstar.t ->
  epsilon:float ->
  ((Simq_geometry.Point.t * 'a) * (Simq_geometry.Point.t * 'b)) list
