(** Sort-Tile-Recursive (STR) bulk loading: packs a static data set into
    an R*-tree with near-full nodes, much faster than repeated insertion
    and with better query performance on static workloads — the natural
    way to build the paper's k-index over an existing relation. *)

(** [load ?max_fill ?min_fill ~dims items] builds a tree containing all
    [items]. Raises [Invalid_argument] on a dimension mismatch. *)
val load :
  ?max_fill:int ->
  ?min_fill:int ->
  dims:int ->
  (Simq_geometry.Point.t * 'a) array ->
  'a Rstar.t

(** [load_rects ?max_fill ?min_fill ~dims items] bulk-loads rectangle
    data entries (tiled by their centres) — used by the subsequence
    index's MBR trails. *)
val load_rects :
  ?max_fill:int ->
  ?min_fill:int ->
  dims:int ->
  (Simq_geometry.Rect.t * 'a) array ->
  'a Rstar.t
