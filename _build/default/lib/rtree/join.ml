open Simq_geometry

let synchronized t1 t2 ~pair_overlaps ~emit ~init =
  if Rstar.size t1 = 0 || Rstar.size t2 = 0 then init
  else begin
    let rec go acc (n1 : 'a Node.node) (n2 : 'b Node.node) =
      Rstar.count_access t1;
      Rstar.count_access t2;
      if not (pair_overlaps n1.Node.mbr n2.Node.mbr) then acc
      else if Node.is_leaf n1 && Node.is_leaf n2 then
        List.fold_left
          (fun acc e1 ->
            match e1 with
            | Node.Child _ -> acc
            | Node.Data { rect = r1; value = v1 } ->
              List.fold_left
                (fun acc e2 ->
                  match e2 with
                  | Node.Child _ -> acc
                  | Node.Data { rect = r2; value = v2 } ->
                    if pair_overlaps r1 r2 then
                      emit acc (r1.Rect.lo, v1) (r2.Rect.lo, v2)
                    else acc)
                acc n2.Node.entries)
          acc n1.Node.entries
      else if Node.is_leaf n1 then
        List.fold_left
          (fun acc e2 ->
            match e2 with
            | Node.Child c2 ->
              if pair_overlaps n1.Node.mbr c2.Node.mbr then go acc n1 c2
              else acc
            | Node.Data _ -> acc)
          acc n2.Node.entries
      else if Node.is_leaf n2 then
        List.fold_left
          (fun acc e1 ->
            match e1 with
            | Node.Child c1 ->
              if pair_overlaps c1.Node.mbr n2.Node.mbr then go acc c1 n2
              else acc
            | Node.Data _ -> acc)
          acc n1.Node.entries
      else
        List.fold_left
          (fun acc e1 ->
            match e1 with
            | Node.Child c1 ->
              List.fold_left
                (fun acc e2 ->
                  match e2 with
                  | Node.Child c2 ->
                    if pair_overlaps c1.Node.mbr c2.Node.mbr then go acc c1 c2
                    else acc
                  | Node.Data _ -> acc)
                acc n2.Node.entries
            | Node.Data _ -> acc)
          acc n1.Node.entries
    in
    go init (Rstar.root t1) (Rstar.root t2)
  end

let inflate rect epsilon =
  let d = Rect.dims rect in
  let lo = Array.init d (fun i -> rect.Rect.lo.(i) -. epsilon) in
  let hi = Array.init d (fun i -> rect.Rect.hi.(i) +. epsilon) in
  Rect.create ~lo ~hi

let within_epsilon ?transform_left ?transform_right t1 t2 ~epsilon =
  if epsilon < 0. then invalid_arg "Join.within_epsilon: negative epsilon";
  let map_rect transform r =
    match transform with
    | None -> r
    | Some tr -> Linear_transform.apply_rect tr r
  in
  let map_point transform p =
    match transform with
    | None -> p
    | Some tr -> Linear_transform.apply tr p
  in
  let pair_overlaps r1 r2 =
    Rect.intersects
      (inflate (map_rect transform_left r1) epsilon)
      (map_rect transform_right r2)
  in
  synchronized t1 t2 ~pair_overlaps ~init:[]
    ~emit:(fun acc (p1, v1) (p2, v2) ->
      let d =
        Point.distance
          (map_point transform_left p1)
          (map_point transform_right p2)
      in
      if d <= epsilon then ((p1, v1), (p2, v2)) :: acc else acc)
