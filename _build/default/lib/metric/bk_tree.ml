type 'a node = {
  value : 'a;
  mutable duplicates : int;  (* extra copies at distance 0 *)
  children : (int, 'a node) Hashtbl.t;
}

type 'a t = {
  dist : 'a -> 'a -> int;
  mutable root : 'a node option;
  mutable size : int;
}

let create ~dist = { dist; root = None; size = 0 }
let size t = t.size

let insert t item =
  t.size <- t.size + 1;
  match t.root with
  | None -> t.root <- Some { value = item; duplicates = 0; children = Hashtbl.create 4 }
  | Some root ->
    let rec go node =
      let d = t.dist node.value item in
      if d = 0 then node.duplicates <- node.duplicates + 1
      else
        match Hashtbl.find_opt node.children d with
        | Some child -> go child
        | None ->
          Hashtbl.replace node.children d
            { value = item; duplicates = 0; children = Hashtbl.create 4 }
    in
    go root

let of_array ~dist items =
  let t = create ~dist in
  Array.iter (insert t) items;
  t

let range t ~query ~radius =
  if radius < 0 then invalid_arg "Bk_tree.range: negative radius";
  let results = ref [] in
  let rec go node =
    let d = t.dist node.value query in
    if d <= radius then
      for _ = 0 to node.duplicates do
        results := (node.value, d) :: !results
      done;
    Hashtbl.iter
      (fun key child -> if abs (key - d) <= radius then go child)
      node.children
  in
  (match t.root with
  | None -> ()
  | Some root -> go root);
  !results
