(** The trivial baseline: compare the query against every item. Used to
    validate the metric indexes and as the “sequential scan” comparator
    in benchmarks. *)

val range :
  dist:'a Metric.distance -> 'a array -> query:'a -> radius:float ->
  ('a * float) list

val nearest :
  dist:'a Metric.distance -> 'a array -> query:'a -> k:int ->
  ('a * float) list
