(** Burkhard–Keller tree: a metric index for integer-valued distances
    (e.g. unit-cost edit distance). Children are bucketed by their exact
    distance to the node value, and the triangle inequality restricts a
    range query with radius [r] to buckets [d-r .. d+r]. *)

type 'a t

(** [create ~dist] is an empty tree over the integer metric [dist]. *)
val create : dist:('a -> 'a -> int) -> 'a t

val size : 'a t -> int

(** [insert t item] adds an item (duplicates at distance 0 are kept). *)
val insert : 'a t -> 'a -> unit

val of_array : dist:('a -> 'a -> int) -> 'a array -> 'a t

(** [range t ~query ~radius] is all items within [radius] of [query]. *)
val range : 'a t -> query:'a -> radius:int -> ('a * int) list
