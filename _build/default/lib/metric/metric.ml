type 'a distance = 'a -> 'a -> float

let counted dist =
  let calls = ref 0 in
  let wrapped a b =
    incr calls;
    dist a b
  in
  (wrapped, fun () -> !calls)

let check_axioms dist sample =
  let violations = ref [] in
  let report msg = if not (List.mem msg !violations) then violations := msg :: !violations in
  let n = Array.length sample in
  for i = 0 to n - 1 do
    if Float.abs (dist sample.(i) sample.(i)) > 1e-9 then
      report "d(x, x) <> 0";
    for j = 0 to n - 1 do
      let dij = dist sample.(i) sample.(j) in
      if dij < 0. then report "negative distance";
      if Float.abs (dij -. dist sample.(j) sample.(i)) > 1e-9 then
        report "not symmetric"
    done
  done;
  (* Triangle inequality on all triples (sample sizes are small). *)
  (try
     for i = 0 to n - 1 do
       for j = 0 to n - 1 do
         for k = 0 to n - 1 do
           if dist sample.(i) sample.(k) > dist sample.(i) sample.(j) +. dist sample.(j) sample.(k) +. 1e-9
           then begin
             report "triangle inequality violated";
             raise Exit
           end
         done
       done
     done
   with Exit -> ());
  List.rev !violations
