(** Vantage-point tree: a metric index. Each node keeps one vantage
    object and the median distance to it; the triangle inequality prunes
    whole subtrees during range and k-NN queries. *)

type 'a t

(** [build ~dist items] builds a tree over [items] (duplicates allowed).
    The construction is deterministic: the first element of each
    partition becomes the vantage point. *)
val build : dist:'a Metric.distance -> 'a array -> 'a t

val size : 'a t -> int

(** [range t ~query ~radius] is all items within [radius] of [query],
    with distances. Correct for any [dist] satisfying the metric
    axioms. *)
val range : 'a t -> query:'a -> radius:float -> ('a * float) list

(** [nearest t ~query ~k] is the [k] closest items, closest first. *)
val nearest : 'a t -> query:'a -> k:int -> ('a * float) list
