lib/metric/bk_tree.mli:
