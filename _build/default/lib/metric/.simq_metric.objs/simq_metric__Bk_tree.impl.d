lib/metric/bk_tree.ml: Array Hashtbl
