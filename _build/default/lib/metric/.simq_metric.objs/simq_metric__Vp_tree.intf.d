lib/metric/vp_tree.mli: Metric
