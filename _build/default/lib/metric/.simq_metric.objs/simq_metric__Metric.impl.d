lib/metric/metric.ml: Array Float List
