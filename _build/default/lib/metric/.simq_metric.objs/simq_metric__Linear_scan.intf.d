lib/metric/linear_scan.mli: Metric
