lib/metric/linear_scan.ml: Array Float List
