lib/metric/metric.mli:
