lib/metric/vp_tree.ml: Array Float List Metric
