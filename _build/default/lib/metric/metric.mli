(** Distance functions and metric axioms.

    Rule-based similarity distances are not Euclidean, so the R-tree
    machinery does not apply to them; when they satisfy the metric
    axioms (symmetric rule sets do), the {!Vp_tree} and {!Bk_tree}
    indexes answer range and nearest-neighbour queries without a
    coordinate space. *)

type 'a distance = 'a -> 'a -> float

(** [counted dist] wraps [dist] with an invocation counter — experiments
    report distance computations the way the paper reports page reads. *)
val counted : 'a distance -> 'a distance * (unit -> int)

(** [check_axioms dist sample] tests non-negativity, identity of
    indiscernibles (one way: [d x x = 0]), symmetry, and the triangle
    inequality over all pairs/triples of [sample]; returns the
    descriptions of violated axioms (empty = plausibly a metric). *)
val check_axioms : 'a distance -> 'a array -> string list
