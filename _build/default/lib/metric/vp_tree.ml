type 'a node =
  | Empty
  | Node of {
      vantage : 'a;
      median : float;  (* items with d(vantage, item) <= median go inside *)
      inside : 'a node;
      outside : 'a node;
    }

type 'a t = {
  dist : 'a Metric.distance;
  root : 'a node;
  size : int;
}

let rec build_node dist items =
  match items with
  | [] -> Empty
  | vantage :: rest ->
    let keyed = List.map (fun item -> (dist vantage item, item)) rest in
    let sorted = List.sort (fun (d1, _) (d2, _) -> Float.compare d1 d2) keyed in
    let n = List.length sorted in
    let median =
      if n = 0 then 0. else fst (List.nth sorted ((n - 1) / 2))
    in
    let inside, outside =
      List.partition (fun (d, _) -> d <= median) sorted
    in
    Node
      {
        vantage;
        median;
        inside = build_node dist (List.map snd inside);
        outside = build_node dist (List.map snd outside);
      }

let build ~dist items =
  { dist; root = build_node dist (Array.to_list items); size = Array.length items }

let size t = t.size

let range t ~query ~radius =
  if radius < 0. then invalid_arg "Vp_tree.range: negative radius";
  let rec go acc = function
    | Empty -> acc
    | Node { vantage; median; inside; outside } ->
      let d = t.dist query vantage in
      let acc = if d <= radius then (vantage, d) :: acc else acc in
      let acc = if d -. radius <= median then go acc inside else acc in
      if d +. radius >= median then go acc outside else acc
  in
  go [] t.root

let nearest t ~query ~k =
  if k <= 0 then invalid_arg "Vp_tree.nearest: k must be positive";
  (* Best-candidates list kept sorted descending by distance; tau is the
     current k-th distance. *)
  let best = ref [] in
  let count = ref 0 in
  let tau () = if !count < k then Float.infinity else
      match !best with
      | (d, _) :: _ -> d
      | [] -> Float.infinity
  in
  let add d item =
    best := List.merge (fun (d1, _) (d2, _) -> Float.compare d2 d1)
        [ (d, item) ] !best;
    if !count < k then incr count else best := List.tl !best
  in
  let rec go = function
    | Empty -> ()
    | Node { vantage; median; inside; outside } ->
      let d = t.dist query vantage in
      if d < tau () then add d vantage;
      (* Visit the side containing the query first to tighten tau. *)
      let first, second, gap =
        if d <= median then (inside, outside, median -. d)
        else (outside, inside, d -. median)
      in
      go first;
      if gap <= tau () then go second
  in
  go t.root;
  List.rev_map (fun (d, item) -> (item, d)) !best
