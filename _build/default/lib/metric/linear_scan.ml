let range ~dist items ~query ~radius =
  Array.to_list items
  |> List.filter_map (fun item ->
         let d = dist query item in
         if d <= radius then Some (item, d) else None)

let nearest ~dist items ~query ~k =
  if k <= 0 then invalid_arg "Linear_scan.nearest: k must be positive";
  Array.to_list items
  |> List.map (fun item -> (dist query item, item))
  |> List.sort (fun (d1, _) (d2, _) -> Float.compare d1 d2)
  |> List.filteri (fun i _ -> i < k)
  |> List.map (fun (d, item) -> (item, d))
