(** An LRU buffer pool over page identifiers. Data lives in memory; the
    pool tracks which pages {e would} be resident, so cache misses equal
    the disk reads a paged implementation would issue. *)

type t

(** [create ~capacity ~stats] keeps at most [capacity] pages resident
    and records hits/misses in [stats]. Raises [Invalid_argument] when
    [capacity <= 0]. *)
val create : capacity:int -> stats:Io_stats.t -> t

(** [touch pool page] accesses [page]: [`Hit] when resident, [`Miss]
    (counted as a page read, least-recently-used page evicted if
    necessary) otherwise. *)
val touch : t -> int -> [ `Hit | `Miss ]

(** [resident pool] is the number of currently resident pages. *)
val resident : t -> int

(** [flush pool] empties the pool (counters keep their values). *)
val flush : t -> unit
