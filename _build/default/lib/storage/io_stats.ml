type t = {
  mutable page_reads : int;
  mutable page_writes : int;
  mutable cache_hits : int;
}

let create () = { page_reads = 0; page_writes = 0; cache_hits = 0 }
let record_page_read t = t.page_reads <- t.page_reads + 1
let record_page_write t = t.page_writes <- t.page_writes + 1
let record_cache_hit t = t.cache_hits <- t.cache_hits + 1
let page_reads t = t.page_reads
let page_writes t = t.page_writes
let cache_hits t = t.cache_hits

let reset t =
  t.page_reads <- 0;
  t.page_writes <- 0;
  t.cache_hits <- 0

let pp ppf t =
  Format.fprintf ppf "reads=%d writes=%d hits=%d" t.page_reads t.page_writes
    t.cache_hits
