(** CSV import/export for relations, so real series (stock closes,
    sensor dumps) can be loaded without writing OCaml.

    Format: one series per row, [name,v1,v2,…,vn]; every row must have
    the same number of values. No quoting — names must not contain
    commas or newlines. *)

(** [export relation path] writes every tuple. *)
val export : Relation.t -> string -> unit

(** [import ?page_size ?pool_pages ~name path] reads a relation back.
    Raises [Failure] with a line-numbered message on malformed input
    (wrong column counts, unparsable numbers, empty file). *)
val import :
  ?page_size:int -> ?pool_pages:int -> name:string -> string -> Relation.t
