lib/storage/csv.ml: Array Fun Io_stats List Printf Relation String
