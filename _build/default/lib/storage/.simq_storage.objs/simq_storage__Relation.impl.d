lib/storage/relation.ml: Array Buffer_pool Fun Io_stats Marshal Printf Simq_series
