lib/storage/relation.mli: Io_stats Simq_series
