lib/storage/csv.mli: Relation
