(* LRU via a logical clock: each resident page carries its last-touch
   stamp, eviction removes the minimum. Pool capacities in the
   experiments are small, so the linear eviction scan is irrelevant. *)

type t = {
  capacity : int;
  stats : Io_stats.t;
  resident : (int, int) Hashtbl.t;  (* page id -> last-touch stamp *)
  mutable clock : int;
}

let create ~capacity ~stats =
  if capacity <= 0 then invalid_arg "Buffer_pool.create: capacity";
  { capacity; stats; resident = Hashtbl.create (2 * capacity); clock = 0 }

let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun page stamp acc ->
        match acc with
        | Some (_, best) when best <= stamp -> acc
        | _ -> Some (page, stamp))
      t.resident None
  in
  match victim with
  | Some (page, _) -> Hashtbl.remove t.resident page
  | None -> ()

let touch t page =
  t.clock <- t.clock + 1;
  if Hashtbl.mem t.resident page then begin
    Hashtbl.replace t.resident page t.clock;
    Io_stats.record_cache_hit t.stats;
    `Hit
  end
  else begin
    Io_stats.record_page_read t.stats;
    if Hashtbl.length t.resident >= t.capacity then evict_lru t;
    Hashtbl.replace t.resident page t.clock;
    `Miss
  end

let resident t = Hashtbl.length t.resident
let flush t = Hashtbl.reset t.resident
