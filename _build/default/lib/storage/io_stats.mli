(** Mutable I/O counters. The library runs in memory, but experiments
    report page accesses the way the paper reports disk accesses, so
    every storage component counts the page traffic it would have
    caused. *)

type t

val create : unit -> t

val record_page_read : t -> unit
val record_page_write : t -> unit
val record_cache_hit : t -> unit

val page_reads : t -> int
val page_writes : t -> int
val cache_hits : t -> int

val reset : t -> unit
val pp : Format.formatter -> t -> unit
