(** A minimal binary min-heap keyed by floats, used by the best-first
    nearest-neighbour search. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val size : 'a t -> int

(** [push h key v] inserts [v] with priority [key]. *)
val push : 'a t -> float -> 'a -> unit

(** [pop_min h] removes and returns the entry with the smallest key. *)
val pop_min : 'a t -> (float * 'a) option

(** [peek_min_key h] is the smallest key without removing it. *)
val peek_min_key : 'a t -> float option
