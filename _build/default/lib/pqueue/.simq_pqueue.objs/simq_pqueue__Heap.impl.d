lib/pqueue/heap.ml: Array
