lib/pqueue/heap.mli:
