type 'a t = {
  mutable keys : float array;
  mutable values : 'a option array;
  mutable count : int;
}

let create () = { keys = Array.make 16 0.; values = Array.make 16 None; count = 0 }
let is_empty h = h.count = 0
let size h = h.count

let grow h =
  let capacity = Array.length h.keys in
  if h.count = capacity then begin
    let keys = Array.make (capacity * 2) 0. in
    let values = Array.make (capacity * 2) None in
    Array.blit h.keys 0 keys 0 capacity;
    Array.blit h.values 0 values 0 capacity;
    h.keys <- keys;
    h.values <- values
  end

let swap h a b =
  let k = h.keys.(a) in
  h.keys.(a) <- h.keys.(b);
  h.keys.(b) <- k;
  let v = h.values.(a) in
  h.values.(a) <- h.values.(b);
  h.values.(b) <- v

let push h key value =
  grow h;
  h.keys.(h.count) <- key;
  h.values.(h.count) <- Some value;
  h.count <- h.count + 1;
  let idx = ref (h.count - 1) in
  while !idx > 0 && h.keys.((!idx - 1) / 2) > h.keys.(!idx) do
    swap h !idx ((!idx - 1) / 2);
    idx := (!idx - 1) / 2
  done

let pop_min h =
  if h.count = 0 then None
  else begin
    let key = h.keys.(0) in
    let value =
      match h.values.(0) with
      | Some v -> v
      | None -> assert false
    in
    h.count <- h.count - 1;
    h.keys.(0) <- h.keys.(h.count);
    h.values.(0) <- h.values.(h.count);
    h.values.(h.count) <- None;
    let idx = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !idx) + 1 and r = (2 * !idx) + 2 in
      let smallest = ref !idx in
      if l < h.count && h.keys.(l) < h.keys.(!smallest) then smallest := l;
      if r < h.count && h.keys.(r) < h.keys.(!smallest) then smallest := r;
      if !smallest = !idx then continue := false
      else begin
        swap h !idx !smallest;
        idx := !smallest
      end
    done;
    Some (key, value)
  end

let peek_min_key h = if h.count = 0 then None else Some h.keys.(0)
