(** Cascading reduction search: the general semantics where rules may
    rewrite the output of earlier rules. Reachability under unrestricted
    rewriting is the (undecidable) word problem for semi-Thue systems, so
    this module requires a finite cost bound and strictly positive rule
    costs, which makes the reachable cost-bounded state space finite and
    explorable by uniform-cost (Dijkstra) search.

    Insert/substitute schemas draw characters from the alphabet of the
    two endpoint strings. *)

exception Budget_exceeded
(** Raised when the search would expand more than [max_states] states —
    the answer within the bound is then unknown, which is reported
    honestly instead of returning a misleading [None]. *)

(** [min_cost ~rules ~bound x y] is [Some (cost, derivation)] when [x]
    rewrites to [y] by a cascade of rule applications with total cost
    [<= bound]; the derivation is the sequence of intermediate strings
    from [x] to [y] inclusive. [None] when no such cascade exists.

    Raises [Invalid_argument] when the rule list is empty or some rule
    cost is zero, {!Budget_exceeded} when [max_states] (default 100_000)
    expansions were not enough. *)
val min_cost :
  ?max_states:int ->
  rules:Rule.t list ->
  bound:float ->
  string ->
  string ->
  (float * string list) option
