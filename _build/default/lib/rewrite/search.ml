module Heap = Simq_pqueue.Heap

exception Budget_exceeded

let alphabet_of strings =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun s -> String.iter (fun c -> Hashtbl.replace seen c ()) s)
    strings;
  Hashtbl.fold (fun c () acc -> c :: acc) seen []

let splice s ~pos ~len replacement =
  String.concat ""
    [
      String.sub s 0 pos;
      replacement;
      String.sub s (pos + len) (String.length s - pos - len);
    ]

(* All successor states of [s] with their step costs. *)
let successors ~rules ~alphabet s =
  let out = ref [] in
  let push cost s' = out := (cost, s') :: !out in
  let n = String.length s in
  List.iter
    (fun rule ->
      match rule with
      | Rule.Delete_any { cost } ->
        for pos = 0 to n - 1 do
          push cost (splice s ~pos ~len:1 "")
        done
      | Rule.Insert_any { cost } ->
        List.iter
          (fun c ->
            for pos = 0 to n do
              push cost (splice s ~pos ~len:0 (String.make 1 c))
            done)
          alphabet
      | Rule.Substitute_any { cost } ->
        List.iter
          (fun c ->
            for pos = 0 to n - 1 do
              if s.[pos] <> c then
                push cost (splice s ~pos ~len:1 (String.make 1 c))
            done)
          alphabet
      | Rule.Rewrite { lhs; rhs; cost } ->
        let ll = String.length lhs in
        if ll = 0 then
          for pos = 0 to n do
            push cost (splice s ~pos ~len:0 rhs)
          done
        else
          for pos = 0 to n - ll do
            if String.equal (String.sub s pos ll) lhs then
              push cost (splice s ~pos ~len:ll rhs)
          done)
    rules;
  !out

let min_cost ?(max_states = 100_000) ~rules ~bound x y =
  if rules = [] then invalid_arg "Search.min_cost: empty rule list";
  if Rule.min_cost rules <= 0. then
    invalid_arg "Search.min_cost: cascading search requires positive costs";
  if bound < 0. then invalid_arg "Search.min_cost: negative bound";
  let alphabet = alphabet_of [ x; y ] in
  (* Strings longer than this can never shrink back to y within the
     remaining budget. *)
  let max_steps = int_of_float (bound /. Rule.min_cost rules) in
  let max_len = max (String.length x) (String.length y) + max_steps in
  let best : (string, float) Hashtbl.t = Hashtbl.create 1024 in
  let parent : (string, string) Hashtbl.t = Hashtbl.create 1024 in
  let frontier = Heap.create () in
  Heap.push frontier 0. x;
  Hashtbl.replace best x 0.;
  let expanded = ref 0 in
  let rec derivation s acc =
    match Hashtbl.find_opt parent s with
    | None -> s :: acc
    | Some prev -> derivation prev (s :: acc)
  in
  let rec drain () =
    match Heap.pop_min frontier with
    | None -> None
    | Some (cost, s) ->
      if cost > bound then None
      else if Hashtbl.find_opt best s <> Some cost then drain () (* stale *)
      else if String.equal s y then Some (cost, derivation s [])
      else begin
        incr expanded;
        if !expanded > max_states then raise Budget_exceeded;
        List.iter
          (fun (step_cost, s') ->
            let cost' = cost +. step_cost in
            if cost' <= bound && String.length s' <= max_len then begin
              match Hashtbl.find_opt best s' with
              | Some known when known <= cost' -> ()
              | _ ->
                Hashtbl.replace best s' cost';
                Hashtbl.replace parent s' s;
                Heap.push frontier cost' s'
            end)
          (successors ~rules ~alphabet s);
        drain ()
      end
  in
  drain ()
