type t =
  | Rewrite of { lhs : string; rhs : string; cost : float }
  | Delete_any of { cost : float }
  | Insert_any of { cost : float }
  | Substitute_any of { cost : float }

let check_cost name cost =
  if not (Float.is_finite cost) || cost < 0. then
    invalid_arg (name ^ ": cost must be finite and non-negative")

let rewrite ~lhs ~rhs ~cost =
  check_cost "Rule.rewrite" cost;
  if lhs = "" && rhs = "" then invalid_arg "Rule.rewrite: both sides empty";
  if String.equal lhs rhs then invalid_arg "Rule.rewrite: lhs = rhs is a no-op";
  Rewrite { lhs; rhs; cost }

let delete_any ~cost =
  check_cost "Rule.delete_any" cost;
  Delete_any { cost }

let insert_any ~cost =
  check_cost "Rule.insert_any" cost;
  Insert_any { cost }

let substitute_any ~cost =
  check_cost "Rule.substitute_any" cost;
  Substitute_any { cost }

let cost = function
  | Rewrite { cost; _ }
  | Delete_any { cost }
  | Insert_any { cost }
  | Substitute_any { cost } ->
    cost

let levenshtein =
  [ delete_any ~cost:1.; insert_any ~cost:1.; substitute_any ~cost:1. ]

let growth = function
  | Rewrite { lhs; rhs; _ } -> String.length rhs - String.length lhs
  | Delete_any _ -> -1
  | Insert_any _ -> 1
  | Substitute_any _ -> 0

let max_growth rules = List.fold_left (fun acc r -> max acc (growth r)) 0 rules

let min_cost = function
  | [] -> invalid_arg "Rule.min_cost: empty rule set"
  | rules -> List.fold_left (fun acc r -> Float.min acc (cost r)) Float.infinity rules

let pp ppf = function
  | Rewrite { lhs; rhs; cost } ->
    Format.fprintf ppf "%S -> %S @@ %g" lhs rhs cost
  | Delete_any { cost } -> Format.fprintf ppf "delete-any @ %g" cost
  | Insert_any { cost } -> Format.fprintf ppf "insert-any @ %g" cost
  | Substitute_any { cost } -> Format.fprintf ppf "substitute-any @ %g" cost
