(** The transformation rule language [T] of the framework, instantiated
    for symbol sequences (strings): cost-carrying rewrite rules.

    A rule is either a concrete rewrite [lhs -> rhs @ cost] or one of
    three schemas that stand for whole families of single-character
    rules without enumerating an alphabet. The classic Levenshtein edit
    distance is the rule set
    [{delete_any 1; insert_any 1; substitute_any 1}]. *)

type t = private
  | Rewrite of { lhs : string; rhs : string; cost : float }
      (** replace one occurrence of [lhs] by [rhs] *)
  | Delete_any of { cost : float }  (** any single character -> ε *)
  | Insert_any of { cost : float }  (** ε -> any single character *)
  | Substitute_any of { cost : float }
      (** any character -> any {e different} character *)

(** [rewrite ~lhs ~rhs ~cost] builds a concrete rule. Raises
    [Invalid_argument] when [cost] is negative or not finite, when
    [lhs = rhs] (a no-op), or when both sides are empty. *)
val rewrite : lhs:string -> rhs:string -> cost:float -> t

val delete_any : cost:float -> t
val insert_any : cost:float -> t
val substitute_any : cost:float -> t

val cost : t -> float

(** [levenshtein] is the unit-cost edit-distance rule set. *)
val levenshtein : t list

(** [max_growth rules] is the largest [length rhs - length lhs] over the
    set (at least 1 when an insertion schema is present); used by the
    cascading search to bound the reachable string lengths. *)
val max_growth : t list -> int

(** [min_cost rules] is the smallest rule cost. *)
val min_cost : t list -> float

val pp : Format.formatter -> t -> unit
