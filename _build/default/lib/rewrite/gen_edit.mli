(** Generalised weighted edit distance: the minimum total cost of
    reducing [x] to [y] under the {e non-cascading} semantics — every
    position of [x] is consumed by at most one rule application and rule
    outputs are not rewritten again.

    Under this semantics a reduction is an alignment: [x] decomposes into
    blocks that are either copied verbatim (free) or rewritten by one
    rule, so the minimum cost is a dynamic program over prefix pairs in
    O(|x|·|y|·R·L). With {!Rule.levenshtein} this is exactly the classic
    edit distance. The cascading semantics is in {!Search}. *)

type step =
  | Copy of char  (** position copied unchanged *)
  | Applied of { rule : Rule.t; consumed : string; produced : string }
      (** one rule application: [consumed] ⊂ x became [produced] ⊂ y *)

(** [distance ~rules x y] is the minimal reduction cost, or [infinity]
    when no decomposition exists. Raises [Invalid_argument] on an empty
    rule list. *)
val distance : rules:Rule.t list -> string -> string -> float

(** [distance_bounded ~rules ~bound x y] is [Some d] when
    [distance ~rules x y = d <= bound] — the framework's cost-bounded
    similarity predicate [x ≈[rules, bound] y]. *)
val distance_bounded :
  rules:Rule.t list -> bound:float -> string -> string -> float option

(** [alignment ~rules x y] additionally reconstructs one optimal
    derivation, in left-to-right order. [None] when [y] is unreachable. *)
val alignment : rules:Rule.t list -> string -> string -> (float * step list) option

val pp_step : Format.formatter -> step -> unit
