lib/rewrite/search.ml: Hashtbl List Rule Simq_pqueue String
