lib/rewrite/rule.mli: Format
