lib/rewrite/search.mli: Rule
