lib/rewrite/gen_edit.mli: Format Rule
