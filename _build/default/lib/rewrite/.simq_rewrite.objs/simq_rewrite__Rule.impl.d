lib/rewrite/rule.ml: Float Format List String
