lib/rewrite/gen_edit.ml: Array Float Format List Rule String
