type step =
  | Copy of char
  | Applied of { rule : Rule.t; consumed : string; produced : string }

(* d.(i).(j): min cost to turn x[0..i) into y[0..j).
   choice.(i).(j): the step that achieves it, with predecessor implied by
   the consumed/produced lengths. *)

let ends_with s upto suffix =
  let ls = String.length suffix in
  upto >= ls
  &&
  let rec go k = k >= ls || (s.[upto - ls + k] = suffix.[k] && go (k + 1)) in
  go 0

let solve ~rules x y =
  if rules = [] then invalid_arg "Gen_edit: empty rule list";
  let n = String.length x and m = String.length y in
  let d = Array.make_matrix (n + 1) (m + 1) Float.infinity in
  let choice = Array.make_matrix (n + 1) (m + 1) None in
  d.(0).(0) <- 0.;
  for i = 0 to n do
    for j = 0 to m do
      let consider cost step =
        if cost < d.(i).(j) then begin
          d.(i).(j) <- cost;
          choice.(i).(j) <- Some step
        end
      in
      if i > 0 && j > 0 && x.[i - 1] = y.[j - 1] then
        consider d.(i - 1).(j - 1) (Copy x.[i - 1]);
      List.iter
        (fun rule ->
          match rule with
          | Rule.Delete_any { cost } ->
            if i > 0 then
              consider
                (d.(i - 1).(j) +. cost)
                (Applied
                   { rule; consumed = String.make 1 x.[i - 1]; produced = "" })
          | Rule.Insert_any { cost } ->
            if j > 0 then
              consider
                (d.(i).(j - 1) +. cost)
                (Applied
                   { rule; consumed = ""; produced = String.make 1 y.[j - 1] })
          | Rule.Substitute_any { cost } ->
            if i > 0 && j > 0 && x.[i - 1] <> y.[j - 1] then
              consider
                (d.(i - 1).(j - 1) +. cost)
                (Applied
                   {
                     rule;
                     consumed = String.make 1 x.[i - 1];
                     produced = String.make 1 y.[j - 1];
                   })
          | Rule.Rewrite { lhs; rhs; cost } ->
            let ll = String.length lhs and lr = String.length rhs in
            if
              i >= ll && j >= lr && ends_with x i lhs && ends_with y j rhs
            then
              consider
                (d.(i - ll).(j - lr) +. cost)
                (Applied { rule; consumed = lhs; produced = rhs }))
        rules
    done
  done;
  (d, choice)

let distance ~rules x y =
  let d, _ = solve ~rules x y in
  d.(String.length x).(String.length y)

let distance_bounded ~rules ~bound x y =
  let d = distance ~rules x y in
  if d <= bound then Some d else None

let alignment ~rules x y =
  let d, choice = solve ~rules x y in
  let n = String.length x and m = String.length y in
  if not (Float.is_finite d.(n).(m)) then None
  else begin
    let rec back i j acc =
      if i = 0 && j = 0 then acc
      else
        match choice.(i).(j) with
        | None -> assert false
        | Some (Copy _ as step) -> back (i - 1) (j - 1) (step :: acc)
        | Some (Applied { consumed; produced; _ } as step) ->
          back
            (i - String.length consumed)
            (j - String.length produced)
            (step :: acc)
    in
    Some (d.(n).(m), back n m [])
  end

let pp_step ppf = function
  | Copy c -> Format.fprintf ppf "copy %C" c
  | Applied { rule; consumed; produced } ->
    Format.fprintf ppf "%S=>%S via %a" consumed produced Rule.pp rule
