module Series = Simq_series.Series

type regime = Bull | Bear | Flat

let drift = function
  | Bull -> 0.0012
  | Bear -> -0.0015
  | Flat -> 0.

let volatility = function
  | Bull -> 0.012
  | Bear -> 0.022
  | Flat -> 0.007

let switch_probability = 0.03

let next_regime state = function
  | current when Random.State.float state 1. > switch_probability -> current
  | _ -> (
    match Random.State.int state 3 with
    | 0 -> Bull
    | 1 -> Bear
    | _ -> Flat)

(* Box-Muller, one normal deviate. *)
let gaussian state =
  let u1 = Float.max epsilon_float (Random.State.float state 1.) in
  let u2 = Random.State.float state 1. in
  sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2)

let generate state ~n =
  if n <= 0 then invalid_arg "Stocklike.generate: n must be positive";
  let s = Array.make n 0. in
  s.(0) <- 5. +. Random.State.float state 95.;
  let regime = ref (next_regime state Flat) in
  for t = 1 to n - 1 do
    regime := next_regime state !regime;
    let shock = gaussian state in
    let r = drift !regime +. (volatility !regime *. shock) in
    s.(t) <- Float.max 0.01 (s.(t - 1) *. exp r)
  done;
  s

let batch ~seed ~count ~n =
  let state = Random.State.make [| seed |] in
  Array.init count (fun _ -> generate state ~n)

let paper_market () = batch ~seed:1995 ~count:1067 ~n:128

let correlated_pair state ~n ~rho =
  if rho < -1. || rho > 1. then
    invalid_arg "Stocklike.correlated_pair: rho must be in [-1, 1]";
  if n <= 0 then invalid_arg "Stocklike.correlated_pair: n must be positive";
  let a = Array.make n 0. and b = Array.make n 0. in
  a.(0) <- 5. +. Random.State.float state 95.;
  b.(0) <- 5. +. Random.State.float state 95.;
  let ortho = sqrt (1. -. (rho *. rho)) in
  for t = 1 to n - 1 do
    let shared = gaussian state and own = gaussian state in
    let shock_a = shared in
    let shock_b = (rho *. shared) +. (ortho *. own) in
    a.(t) <- Float.max 0.01 (a.(t - 1) *. exp (0.012 *. shock_a));
    b.(t) <- Float.max 0.01 (b.(t - 1) *. exp (0.012 *. shock_b))
  done;
  (a, b)
