(** Stock-like synthetic series: the stand-in for the paper's real
    stock data (1067 series of 128 daily closes from
    [ftp.ai.mit.edu/pub/stocks/results/], no longer available).

    Prices follow a regime-switching geometric random walk: bull, bear
    and flat regimes with distinct drift/volatility, switching with a
    small daily probability. This clusters series the way real closing
    prices cluster (trends + volatility bursts), which is what the
    experiments' answer-set sizes depend on. *)

(** [generate state ~n] is one price series of length [n]; all values
    are positive. *)
val generate : Random.State.t -> n:int -> Simq_series.Series.t

(** [batch ~seed ~count ~n] is a reproducible market. *)
val batch : seed:int -> count:int -> n:int -> Simq_series.Series.t array

(** [paper_market ()] is the Table-1 scale: 1067 series × 128 days,
    fixed seed. *)
val paper_market : unit -> Simq_series.Series.t array

(** [correlated_pair state ~n ~rho] is two series driven by shocks with
    correlation [rho] ([rho = -1] gives mirror movements, the hedging
    scenario of Example 2.2). Raises [Invalid_argument] unless
    [-1 <= rho <= 1]. *)
val correlated_pair :
  Random.State.t -> n:int -> rho:float ->
  Simq_series.Series.t * Simq_series.Series.t
