let perturb state series ~amount =
  Array.map (fun v -> v +. Random.State.float state (2. *. amount) -. amount)
    series

let threshold_for_count distances ~count =
  let n = Array.length distances in
  if count < 1 || count > n then
    invalid_arg "Queries.threshold_for_count: count out of range";
  let sorted = Array.copy distances in
  Array.sort Float.compare sorted;
  sorted.(count - 1)

let epsilon_for_answer_size ~normals ~query ~target =
  let distances =
    Array.map (fun s -> Simq_series.Distance.euclidean s query) normals
  in
  threshold_for_count distances ~count:target
