(** Query workload helpers: reproducible query series and the threshold
    calibration used by the answer-set-size experiment (Figure 12 varies
    ε “so that the query gave us different numbers of time series in the
    answer set”). *)

(** [perturb state series ~amount] adds uniform noise in
    [-amount, amount] — queries near, but not identical to, stored
    data. *)
val perturb :
  Random.State.t -> Simq_series.Series.t -> amount:float ->
  Simq_series.Series.t

(** [threshold_for_count distances ~count] is the smallest ε admitting
    at least [count] of the given distances (i.e. the [count]-th
    smallest). Raises [Invalid_argument] when [count] is out of
    range. *)
val threshold_for_count : float array -> count:int -> float

(** [epsilon_for_answer_size ~normals ~query ~target] calibrates ε so a
    range query on the normal forms returns [target] answers: the
    [target]-th smallest Euclidean distance from [query] to [normals]. *)
val epsilon_for_answer_size :
  normals:Simq_series.Series.t array ->
  query:Simq_series.Series.t ->
  target:int ->
  float
