lib/workload/stocklike.ml: Array Float Random Simq_series
