lib/workload/queries.ml: Array Float Random Simq_series
