lib/workload/stocklike.mli: Random Simq_series
