lib/workload/queries.mli: Random Simq_series
