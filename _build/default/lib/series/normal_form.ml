type decomposition = {
  normalised : Series.t;
  mean : float;
  std : float;
}

let decompose s =
  let mean = Stats.mean s and std = Stats.std s in
  let normalised =
    if std = 0. then Array.map (fun _ -> 0.) s
    else Array.map (fun v -> (v -. mean) /. std) s
  in
  { normalised; mean; std }

let normalise s = (decompose s).normalised

let reconstruct { normalised; mean; std } =
  Array.map (fun v -> (v *. std) +. mean) normalised

let is_normal ?(eps = 1e-6) s =
  let m = Stats.mean s and sd = Stats.std s in
  Float.abs m <= eps && (sd = 0. || Float.abs (sd -. 1.) <= eps)
