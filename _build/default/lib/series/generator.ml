let uniform state lo hi = lo +. Random.State.float state (hi -. lo)

let random_walk state n =
  if n <= 0 then invalid_arg "Generator.random_walk: n must be positive";
  let s = Array.make n 0. in
  s.(0) <- uniform state 20. 99.;
  for t = 1 to n - 1 do
    s.(t) <- s.(t - 1) +. uniform state (-4.) 4.
  done;
  s

let random_walks ~seed ~count ~n =
  let state = Random.State.make [| seed |] in
  Array.init count (fun _ -> random_walk state n)

let sine state ~n ~period ~amplitude ~noise =
  if n <= 0 then invalid_arg "Generator.sine: n must be positive";
  if period <= 0. then invalid_arg "Generator.sine: period must be positive";
  let phase = Random.State.float state (2. *. Float.pi) in
  Array.init n (fun t ->
      let base =
        amplitude *. sin ((2. *. Float.pi *. float_of_int t /. period) +. phase)
      in
      base +. if noise > 0. then uniform state (-.noise) noise else 0.)

let trend state ~n ~start ~slope ~noise =
  if n <= 0 then invalid_arg "Generator.trend: n must be positive";
  Array.init n (fun t ->
      start
      +. (slope *. float_of_int t)
      +. if noise > 0. then uniform state (-.noise) noise else 0.)
