let require_non_empty name s =
  if Array.length s = 0 then invalid_arg (name ^ ": empty series")

let mean s =
  require_non_empty "Stats.mean" s;
  Array.fold_left ( +. ) 0. s /. float_of_int (Array.length s)

let variance s =
  require_non_empty "Stats.variance" s;
  let m = mean s in
  let acc = Array.fold_left (fun acc v -> acc +. ((v -. m) ** 2.)) 0. s in
  acc /. float_of_int (Array.length s)

let std s = sqrt (variance s)

let minimum s =
  require_non_empty "Stats.minimum" s;
  Array.fold_left Float.min s.(0) s

let maximum s =
  require_non_empty "Stats.maximum" s;
  Array.fold_left Float.max s.(0) s

let covariance a b =
  require_non_empty "Stats.covariance" a;
  if Array.length a <> Array.length b then
    invalid_arg "Stats.covariance: length mismatch";
  let ma = mean a and mb = mean b in
  let acc = ref 0. in
  for t = 0 to Array.length a - 1 do
    acc := !acc +. ((a.(t) -. ma) *. (b.(t) -. mb))
  done;
  !acc /. float_of_int (Array.length a)

let correlation a b =
  let sa = std a and sb = std b in
  if sa = 0. || sb = 0. then 0. else covariance a b /. (sa *. sb)

let autocorrelation s ~lag =
  let n = Array.length s in
  if lag < 0 || lag >= n then invalid_arg "Stats.autocorrelation: bad lag";
  if lag = 0 then 1.
  else
    correlation (Array.sub s 0 (n - lag)) (Array.sub s lag (n - lag))

let returns s =
  if Array.length s < 2 then invalid_arg "Stats.returns: series too short";
  Array.init
    (Array.length s - 1)
    (fun t ->
      if s.(t) = 0. then invalid_arg "Stats.returns: zero value";
      (s.(t + 1) -. s.(t)) /. s.(t))

let log_returns s =
  if Array.length s < 2 then invalid_arg "Stats.log_returns: series too short";
  Array.init
    (Array.length s - 1)
    (fun t ->
      if s.(t) <= 0. || s.(t + 1) <= 0. then
        invalid_arg "Stats.log_returns: non-positive value";
      log (s.(t + 1) /. s.(t)))
