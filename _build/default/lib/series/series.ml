type t = float array

let of_list = Array.of_list
let length = Array.length

let validate s =
  if Array.length s = 0 then invalid_arg "Series.validate: empty series";
  Array.iter
    (fun v ->
      if not (Float.is_finite v) then
        invalid_arg "Series.validate: non-finite value")
    s;
  s

let equal ?(eps = 1e-9) a b =
  Array.length a = Array.length b
  && Array.for_all2 (fun x y -> Float.abs (x -. y) <= eps) a b

let map2 f a b =
  if Array.length a <> Array.length b then
    invalid_arg "Series.map2: length mismatch";
  Array.map2 f a b

let add a b = map2 ( +. ) a b
let sub a b = map2 ( -. ) a b
let scale c s = Array.map (fun v -> c *. v) s
let shift c s = Array.map (fun v -> c +. v) s
let reverse_sign s = scale (-1.) s

let subsequence s ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Array.length s then
    invalid_arg "Series.subsequence: out of bounds";
  Array.sub s pos len

let sample_every k s =
  if k <= 0 then invalid_arg "Series.sample_every: k must be positive";
  let n = (Array.length s + k - 1) / k in
  Array.init n (fun idx -> s.(idx * k))

let dft s = Simq_dsp.Fft.fft_real s
let idft coeffs = Simq_dsp.Cpx.re_array (Simq_dsp.Fft.ifft coeffs)

let pp ppf s =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_seq ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       (fun ppf v -> Format.fprintf ppf "%g" v))
    (Array.to_seq s)
