let check name a b =
  if Array.length a <> Array.length b then
    invalid_arg ("Distance." ^ name ^ ": length mismatch")

let euclidean a b =
  check "euclidean" a b;
  let acc = ref 0. in
  for t = 0 to Array.length a - 1 do
    let d = a.(t) -. b.(t) in
    acc := !acc +. (d *. d)
  done;
  sqrt !acc

let city_block a b =
  check "city_block" a b;
  let acc = ref 0. in
  for t = 0 to Array.length a - 1 do
    acc := !acc +. Float.abs (a.(t) -. b.(t))
  done;
  !acc

let chebyshev a b =
  check "chebyshev" a b;
  let acc = ref 0. in
  for t = 0 to Array.length a - 1 do
    acc := Float.max !acc (Float.abs (a.(t) -. b.(t)))
  done;
  !acc

let euclidean_early_abandon ~threshold a b =
  check "euclidean_early_abandon" a b;
  let limit = threshold *. threshold in
  let n = Array.length a in
  let rec go t acc =
    if acc > limit then None
    else if t >= n then Some (sqrt acc)
    else begin
      let d = a.(t) -. b.(t) in
      go (t + 1) (acc +. (d *. d))
    end
  in
  go 0 0.

let within ~threshold a b =
  match euclidean_early_abandon ~threshold a b with
  | Some _ -> true
  | None -> false
