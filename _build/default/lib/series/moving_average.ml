module Dsp = Simq_dsp

(* Equivalent to a circular convolution with the padded kernel, but in
   O(n·width) instead of O(n²): only the window taps contribute. *)
let circular w s =
  let n = Array.length s in
  let kernel = Dsp.Window.kernel n w in
  let m = Dsp.Window.width w in
  Array.init n (fun i ->
      let acc = ref 0. in
      for j = 0 to m - 1 do
        let idx = if i >= j then i - j else i - j + n in
        acc := !acc +. (kernel.(j) *. s.(idx))
      done;
      !acc)

let sliding m s =
  let n = Array.length s in
  if m <= 0 then invalid_arg "Moving_average.sliding: window must be positive";
  if m > n then invalid_arg "Moving_average.sliding: window wider than series";
  let inv = 1. /. float_of_int m in
  (* Running sum over the window, updated incrementally. *)
  let out = Array.make (n - m + 1) 0. in
  let acc = ref 0. in
  for t = 0 to m - 1 do
    acc := !acc +. s.(t)
  done;
  out.(0) <- !acc *. inv;
  for t = 1 to n - m do
    acc := !acc +. s.(t + m - 1) -. s.(t - 1);
    out.(t) <- !acc *. inv
  done;
  out

let repeated k w s =
  if k < 0 then invalid_arg "Moving_average.repeated: negative count";
  let rec go k s = if k = 0 then s else go (k - 1) (circular w s) in
  go k s

let via_dft w s =
  let n = Array.length s in
  let transfer = Dsp.Window.transfer n w in
  let spectrum = Dsp.Fft.fft_real s in
  Series.idft (Dsp.Cpx.mul_arrays transfer spectrum)
