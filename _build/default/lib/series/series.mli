(** Time series: finite sequences of real values, one value per time
    point (stock closes, sensor readings, …). *)

type t = float array

(** [of_list vs] builds a series from a list of values. *)
val of_list : float list -> t

(** [length s] is the number of time points. *)
val length : t -> int

(** [validate s] raises [Invalid_argument] when [s] is empty or contains
    non-finite values, and returns [s] otherwise. Constructors of
    relations and indexes call this at the boundary so the numeric code
    can assume well-formed inputs. *)
val validate : t -> t

(** [equal ?eps a b] is element-wise equality within [eps]
    (default [1e-9]). *)
val equal : ?eps:float -> t -> t -> bool

(** [map2 f a b] applies [f] element-wise. Raises [Invalid_argument] on
    length mismatch. *)
val map2 : (float -> float -> float) -> t -> t -> t

(** [add a b], [sub a b]: element-wise sum / difference. *)
val add : t -> t -> t

val sub : t -> t -> t

(** [scale c s] multiplies every value by [c]. *)
val scale : float -> t -> t

(** [shift c s] adds [c] to every value. *)
val shift : float -> t -> t

(** [reverse_sign s] is the reversal transformation of Example 2.2:
    every value multiplied by -1 (note: not a time reversal). *)
val reverse_sign : t -> t

(** [subsequence s ~pos ~len] extracts a contiguous subsequence. *)
val subsequence : t -> pos:int -> len:int -> t

(** [sample_every k s] keeps every [k]-th point, modelling a series
    sampled at a lower frequency (Example 1.2). *)
val sample_every : int -> t -> t

(** [dft s] is the series' Discrete Fourier Transform under the unitary
    convention. *)
val dft : t -> Simq_dsp.Cpx.t array

(** [idft coeffs] inverts {!dft}, keeping only the real parts. *)
val idft : Simq_dsp.Cpx.t array -> t

val pp : Format.formatter -> t -> unit
