(** Time warping (Example 1.2 and Appendix A).

    The paper's warping stretches the time dimension by an integer
    factor: every value [v] becomes [m] copies of [v]. Appendix A shows
    the first [k] Fourier coefficients of the stretched series are
    obtained from those of the original by the linear transformation
    [T = (a, 0)] with [a_f = Σ_(t<m) e^(-2π·t·f·j / (m·n))].

    [dtw] is additionally provided as the classical dynamic
    time-warping distance of Sankoff and Kruskal [SK83], cited by the
    paper as the origin of the operation. *)

(** [expand m s] replaces every value by [m] consecutive copies
    (Eq. 16); the result has length [m · length s]. Raises
    [Invalid_argument] when [m < 1]. *)
val expand : int -> Series.t -> Series.t

(** [coefficients ~m ~n ~k] is the warp vector [a] of Eq. 19 for
    stretching a length-[n] series by factor [m], truncated to the first
    [k] coefficients. *)
val coefficients : m:int -> n:int -> k:int -> Simq_dsp.Cpx.t array

(** [spectrum_of_expanded m s] predicts the first [length s] unitary DFT
    coefficients of [expand m s] directly from the spectrum of [s]:
    coefficient [f] is [a_f · S_f / sqrt m] (the [1/sqrt m] adjusts
    Appendix A's [1/sqrt n] normalisation to the unitary convention of a
    length-[m·n] transform). *)
val spectrum_of_expanded : int -> Series.t -> Simq_dsp.Cpx.t array

(** [dtw ?band a b] is the dynamic time-warping distance with squared
    point costs and an optional Sakoe–Chiba band of half-width [band];
    returns the square root of the accumulated cost. *)
val dtw : ?band:int -> Series.t -> Series.t -> float
