(** Synthetic series generators.

    [random_walk] is the paper's synthetic workload (Section 5):
    [x_0] drawn from [20, 99], then [x_t = x_(t-1) + z_t] with each
    [z_t] drawn from [-4, 4]. (The paper calls [x_0] “a normally
    distributed random number in the range [20, 99]” — a bounded range
    contradicts normality, so we draw it uniformly, as common for this
    benchmark lineage.)

    All generators are deterministic given the [Random.State.t]. *)

(** [random_walk state n] is one length-[n] synthetic walk. *)
val random_walk : Random.State.t -> int -> Series.t

(** [random_walks ~seed ~count ~n] is a reproducible batch. *)
val random_walks : seed:int -> count:int -> n:int -> Series.t array

(** [sine state ~n ~period ~amplitude ~noise] is a noisy sinusoid with a
    random phase; [noise] is the half-width of the uniform perturbation. *)
val sine :
  Random.State.t -> n:int -> period:float -> amplitude:float -> noise:float ->
  Series.t

(** [trend state ~n ~start ~slope ~noise] is a noisy line. *)
val trend :
  Random.State.t -> n:int -> start:float -> slope:float -> noise:float ->
  Series.t
