(** Moving averages (Section 1, Example 1.1; Section 3.2).

    The paper uses a {e circular} m-day moving average — the window wraps
    from the beginning of the sequence to its end — because that variant
    is exactly a circular convolution and hence expressible as the
    frequency-domain transformation [T_mavg = (a, 0)]. When the window is
    small relative to the sequence both variants are almost the same. *)

(** [circular w s] is the circular moving average: output value [i]
    averages [s_i, s_(i-1), …] with the weights of [w], indices modulo
    the length. Output has the same length as [s]. Raises
    [Invalid_argument] when the window is wider than the series. *)
val circular : Simq_dsp.Window.t -> Series.t -> Series.t

(** [sliding m s] is the classical (non-circular) m-day moving average of
    length [length s - m + 1], each output the mean of a window of [m]
    consecutive values. *)
val sliding : int -> Series.t -> Series.t

(** [repeated k w s] applies [circular w] [k] times — the successive
    moving averages of Example 2.3. [k = 0] is the identity. *)
val repeated : int -> Simq_dsp.Window.t -> Series.t -> Series.t

(** [via_dft w s] computes the circular moving average in the frequency
    domain: multiply the spectrum by the window's transfer function and
    transform back. Agrees with [circular] up to rounding; it is the
    executable statement that [T_mavg] really is the moving average. *)
val via_dft : Simq_dsp.Window.t -> Series.t -> Series.t
