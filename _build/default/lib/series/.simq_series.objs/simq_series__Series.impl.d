lib/series/series.ml: Array Float Format Simq_dsp
