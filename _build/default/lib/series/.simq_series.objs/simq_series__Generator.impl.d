lib/series/generator.ml: Array Float Random
