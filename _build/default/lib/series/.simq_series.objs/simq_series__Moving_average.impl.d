lib/series/moving_average.ml: Array Series Simq_dsp
