lib/series/warp.ml: Array Float Simq_dsp
