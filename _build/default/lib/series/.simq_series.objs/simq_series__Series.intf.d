lib/series/series.mli: Format Simq_dsp
