lib/series/fixtures.ml:
