lib/series/distance.ml: Array Float
