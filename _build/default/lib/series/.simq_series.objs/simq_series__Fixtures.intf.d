lib/series/fixtures.mli: Series
