lib/series/moving_average.mli: Series Simq_dsp
