lib/series/normal_form.ml: Array Float Series Stats
