lib/series/warp.mli: Series Simq_dsp
