lib/series/normal_form.mli: Series
