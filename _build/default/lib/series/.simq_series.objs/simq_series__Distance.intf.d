lib/series/distance.mli: Series
