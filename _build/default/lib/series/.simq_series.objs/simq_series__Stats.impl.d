lib/series/stats.ml: Array Float
