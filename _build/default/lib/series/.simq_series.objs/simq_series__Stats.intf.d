lib/series/stats.mli: Series
