lib/series/generator.mli: Random Series
