(** The normal form of Goldin and Kanellakis (Eq. 9): shift the mean to
    zero and scale by the inverse of the standard deviation,
    [s'_i = (s_i - mean s) / std s].

    The normal form abstracts from absolute price level and volatility;
    the paper stores [(mean, std)] as the first two index dimensions so
    that simple shifts and scales remain available on top of the polar
    representation. *)

type decomposition = {
  normalised : Series.t;  (** the normal form; mean 0, std 1 *)
  mean : float;
  std : float;
}

(** [decompose s] splits [s] into its normal form and the (mean, std)
    pair that reconstructs it. A constant series has [std = 0] and
    normalises to the zero series. *)
val decompose : Series.t -> decomposition

(** [normalise s] is [(decompose s).normalised]. *)
val normalise : Series.t -> Series.t

(** [reconstruct d] inverts {!decompose}:
    [reconstruct (decompose s) = s] up to rounding. *)
val reconstruct : decomposition -> Series.t

(** [is_normal ?eps s] checks mean ≈ 0 and std ≈ 1 (or std = 0 for the
    zero series). *)
val is_normal : ?eps:float -> Series.t -> bool
