(** Descriptive statistics for series. *)

(** [mean s]. Raises [Invalid_argument] on the empty series. *)
val mean : Series.t -> float

(** [variance s] is the population variance (divide by n). *)
val variance : Series.t -> float

(** [std s] is the population standard deviation. *)
val std : Series.t -> float

val minimum : Series.t -> float
val maximum : Series.t -> float

(** [covariance a b] is the population covariance. Raises
    [Invalid_argument] on length mismatch or empty input. *)
val covariance : Series.t -> Series.t -> float

(** [correlation a b] is Pearson's correlation coefficient in [-1, 1];
    0 when either series is constant. *)
val correlation : Series.t -> Series.t -> float

(** [autocorrelation s ~lag] is the correlation of [s] with itself
    shifted by [lag] points (population normalisation). Raises
    [Invalid_argument] unless [0 <= lag < length s]. *)
val autocorrelation : Series.t -> lag:int -> float

(** [returns s] is the relative day-over-day change
    [(s_(t+1) - s_t) / s_t], length [length s - 1] — standard for price
    series. Raises [Invalid_argument] on zero values or series shorter
    than 2. *)
val returns : Series.t -> Series.t

(** [log_returns s] is [ln (s_(t+1) / s_t)]; requires positive values. *)
val log_returns : Series.t -> Series.t
