(** The concrete series printed in the paper's figures, used by tests and
    the quickstart example. *)

(** Example 1.1, Figure 1(a): closing prices of the first stock. *)
val ex11_s1 : Series.t

(** Example 1.1, Figure 1(b): closing prices of the second stock;
    [D(s1, s2) = 11.92] but the 3-day moving averages are 0.47 apart. *)
val ex11_s2 : Series.t

(** Example 1.2, Figure 2(a): the daily-sampled series [s]. *)
val ex12_s : Series.t

(** Example 1.2, Figure 2(b): the every-other-day series [p];
    [expand 2 p = s]. *)
val ex12_p : Series.t
