(** Distances between series of equal length. All raise
    [Invalid_argument] on length mismatch. *)

(** [euclidean a b] is the L2 distance — the paper's [D] (Eq. 8). *)
val euclidean : Series.t -> Series.t -> float

(** [city_block a b] is the L1 distance mentioned in the introduction. *)
val city_block : Series.t -> Series.t -> float

(** [chebyshev a b] is the L∞ distance. *)
val chebyshev : Series.t -> Series.t -> float

(** [euclidean_early_abandon ~threshold a b] is [Some (euclidean a b)]
    when it does not exceed [threshold], and [None] as soon as the
    partial sum proves it does — the optimised sequential scan of
    Section 5. *)
val euclidean_early_abandon :
  threshold:float -> Series.t -> Series.t -> float option

(** [within ~threshold a b] decides [euclidean a b <= threshold] using
    early abandoning. *)
val within : threshold:float -> Series.t -> Series.t -> bool
