module Dsp = Simq_dsp

let expand m s =
  if m < 1 then invalid_arg "Warp.expand: factor must be >= 1";
  let n = Array.length s in
  Array.init (m * n) (fun idx -> s.(idx / m))

let coefficients ~m ~n ~k =
  if m < 1 || n < 1 then invalid_arg "Warp.coefficients: m and n must be >= 1";
  if k < 0 || k > m * n then invalid_arg "Warp.coefficients: bad k";
  Array.init k (fun f ->
      let acc = ref Dsp.Cpx.zero in
      for t = 0 to m - 1 do
        let theta =
          -2. *. Float.pi *. float_of_int (t * f) /. float_of_int (m * n)
        in
        acc := Dsp.Cpx.add !acc (Dsp.Cpx.exp_i theta)
      done;
      !acc)

let spectrum_of_expanded m s =
  let n = Array.length s in
  let a = coefficients ~m ~n ~k:n in
  let spectrum = Dsp.Fft.fft_real s in
  let inv_sqrt_m = 1. /. sqrt (float_of_int m) in
  Array.init n (fun f ->
      Dsp.Cpx.scale inv_sqrt_m (Dsp.Cpx.mul a.(f) spectrum.(f)))

let dtw ?band a b =
  let n = Array.length a and m = Array.length b in
  if n = 0 || m = 0 then invalid_arg "Warp.dtw: empty series";
  let band =
    match band with
    | None -> max n m
    | Some w ->
      if w < 0 then invalid_arg "Warp.dtw: negative band";
      max w (abs (n - m))
  in
  let inf = Float.infinity in
  let cost = Array.make_matrix (n + 1) (m + 1) inf in
  cost.(0).(0) <- 0.;
  for t = 1 to n do
    let lo = max 1 (t - band) and hi = min m (t + band) in
    for u = lo to hi do
      let d = a.(t - 1) -. b.(u - 1) in
      let best =
        Float.min cost.(t - 1).(u)
          (Float.min cost.(t).(u - 1) cost.(t - 1).(u - 1))
      in
      cost.(t).(u) <- (d *. d) +. best
    done
  done;
  sqrt cost.(n).(m)
