open Simq_metric

let euclid (a : float array) b =
  let acc = ref 0. in
  for i = 0 to Array.length a - 1 do
    let d = a.(i) -. b.(i) in
    acc := !acc +. (d *. d)
  done;
  sqrt !acc

let random_vectors ~seed ~count ~dims =
  let state = Random.State.make [| seed |] in
  Array.init count (fun _ ->
      Array.init dims (fun _ -> Random.State.float state 100.))

let edit_distance a b =
  float_of_int
    (let n = String.length a and m = String.length b in
     let d = Array.make_matrix (n + 1) (m + 1) 0 in
     for i = 0 to n do
       d.(i).(0) <- i
     done;
     for j = 0 to m do
       d.(0).(j) <- j
     done;
     for i = 1 to n do
       for j = 1 to m do
         let sub = if a.[i - 1] = b.[j - 1] then 0 else 1 in
         d.(i).(j) <-
           min
             (min (d.(i - 1).(j) + 1) (d.(i).(j - 1) + 1))
             (d.(i - 1).(j - 1) + sub)
       done
     done;
     d.(n).(m))

let words =
  [|
    "book"; "books"; "cake"; "boo"; "boon"; "cook"; "cape"; "cart"; "soon";
    "moon"; "noon"; "loom"; "root"; "boot"; "loot"; "look"; "lake"; "rake";
  |]

(* --- Metric ------------------------------------------------------------- *)

let test_counted () =
  let dist, calls = Metric.counted euclid in
  ignore (dist [| 0. |] [| 1. |]);
  ignore (dist [| 0. |] [| 2. |]);
  Alcotest.(check int) "two calls" 2 (calls ())

let test_axioms_euclid () =
  let sample = random_vectors ~seed:1 ~count:8 ~dims:3 in
  Alcotest.(check (list string)) "euclid is a metric" []
    (Metric.check_axioms euclid sample)

let test_axioms_detect_violation () =
  (* A "distance" ignoring symmetry. *)
  let bogus a b = if a.(0) < b.(0) then 1. else 2. in
  let sample = random_vectors ~seed:2 ~count:4 ~dims:1 in
  Alcotest.(check bool) "violations found" true
    (Metric.check_axioms bogus sample <> [])

(* --- Vp_tree ------------------------------------------------------------- *)

let test_vp_range_matches_linear () =
  let items = random_vectors ~seed:3 ~count:300 ~dims:3 in
  let tree = Vp_tree.build ~dist:euclid items in
  Alcotest.(check int) "size" 300 (Vp_tree.size tree);
  let state = Random.State.make [| 4 |] in
  for _ = 1 to 20 do
    let query = Array.init 3 (fun _ -> Random.State.float state 100.) in
    let radius = Random.State.float state 40. in
    let expected =
      Linear_scan.range ~dist:euclid items ~query ~radius
      |> List.map snd |> List.sort compare
    in
    let actual =
      Vp_tree.range tree ~query ~radius |> List.map snd |> List.sort compare
    in
    Alcotest.(check (list (float 1e-9))) "distances agree" expected actual
  done

let test_vp_nearest_matches_linear () =
  let items = random_vectors ~seed:5 ~count:300 ~dims:3 in
  let tree = Vp_tree.build ~dist:euclid items in
  let state = Random.State.make [| 6 |] in
  for _ = 1 to 20 do
    let query = Array.init 3 (fun _ -> Random.State.float state 100.) in
    let k = 1 + Random.State.int state 8 in
    let expected =
      Linear_scan.nearest ~dist:euclid items ~query ~k |> List.map snd
    in
    let actual = Vp_tree.nearest tree ~query ~k |> List.map snd in
    Alcotest.(check (list (float 1e-9))) "knn distances" expected actual
  done

let test_vp_on_strings () =
  let tree = Vp_tree.build ~dist:edit_distance words in
  let hits = Vp_tree.range tree ~query:"book" ~radius:1. in
  let hit_words = List.map fst hits |> List.sort compare in
  Alcotest.(check (list string)) "edit-1 neighbourhood"
    [ "boo"; "book"; "books"; "boon"; "boot"; "cook"; "look" ]
    hit_words

let test_vp_prunes_distance_calls () =
  let items = random_vectors ~seed:7 ~count:1000 ~dims:2 in
  let dist, calls = Metric.counted euclid in
  let tree = Vp_tree.build ~dist items in
  let build_calls = calls () in
  ignore (Vp_tree.range tree ~query:[| 50.; 50. |] ~radius:1.);
  let query_calls = calls () - build_calls in
  Alcotest.(check bool)
    (Printf.sprintf "selective range uses < N distance calls (%d)" query_calls)
    true (query_calls < 700)

let test_vp_empty () =
  let tree = Vp_tree.build ~dist:euclid [||] in
  Alcotest.(check int) "size" 0 (Vp_tree.size tree);
  Alcotest.(check (list (pair (array (float 0.)) (float 0.)))) "range" []
    (Vp_tree.range tree ~query:[| 0. |] ~radius:10.)

(* --- Bk_tree --------------------------------------------------------------- *)

let int_edit a b = int_of_float (edit_distance a b)

let test_bk_range_matches_linear () =
  let tree = Bk_tree.of_array ~dist:int_edit words in
  Alcotest.(check int) "size" (Array.length words) (Bk_tree.size tree);
  List.iter
    (fun (query, radius) ->
      let expected =
        Array.to_list words
        |> List.filter (fun w -> int_edit query w <= radius)
        |> List.sort compare
      in
      let actual =
        Bk_tree.range tree ~query ~radius |> List.map fst |> List.sort compare
      in
      Alcotest.(check (list string))
        (Printf.sprintf "%s/%d" query radius)
        expected actual)
    [ ("book", 1); ("moon", 2); ("cart", 0); ("zzzz", 1) ]

let test_bk_duplicates () =
  let tree = Bk_tree.create ~dist:int_edit in
  Bk_tree.insert tree "dup";
  Bk_tree.insert tree "dup";
  Bk_tree.insert tree "other";
  Alcotest.(check int) "size" 3 (Bk_tree.size tree);
  Alcotest.(check int) "both copies found" 2
    (List.length (Bk_tree.range tree ~query:"dup" ~radius:0))

let test_vp_duplicates () =
  let items = Array.make 10 [| 1.; 1. |] in
  let tree = Vp_tree.build ~dist:euclid items in
  Alcotest.(check int) "all duplicates found" 10
    (List.length (Vp_tree.range tree ~query:[| 1.; 1. |] ~radius:0.));
  Alcotest.(check int) "knn over duplicates" 4
    (List.length (Vp_tree.nearest tree ~query:[| 1.; 1. |] ~k:4))

let test_bk_radius_covers_all () =
  let tree = Bk_tree.of_array ~dist:int_edit words in
  Alcotest.(check int) "everything within a huge radius"
    (Array.length words)
    (List.length (Bk_tree.range tree ~query:"book" ~radius:100))

(* --- properties -------------------------------------------------------------- *)

let arb_config =
  QCheck.make
    ~print:(fun (n, seed, r) -> Printf.sprintf "n=%d seed=%d r=%g" n seed r)
    QCheck.Gen.(
      let* n = int_range 1 200 in
      let* seed = int_range 0 1000 in
      let* r = float_range 0. 60. in
      return (n, seed, r))

let prop_vp_range_equivalence =
  QCheck.Test.make ~name:"vp range = linear scan" ~count:50 arb_config
    (fun (n, seed, radius) ->
      let items = random_vectors ~seed ~count:n ~dims:2 in
      let tree = Vp_tree.build ~dist:euclid items in
      let query = [| 50.; 50. |] in
      let expected =
        Linear_scan.range ~dist:euclid items ~query ~radius
        |> List.map snd |> List.sort compare
      in
      let actual =
        Vp_tree.range tree ~query ~radius |> List.map snd |> List.sort compare
      in
      expected = actual)

let prop_vp_nn_equivalence =
  QCheck.Test.make ~name:"vp 3-NN = linear scan" ~count:50 arb_config
    (fun (n, seed, _) ->
      let items = random_vectors ~seed ~count:n ~dims:2 in
      let tree = Vp_tree.build ~dist:euclid items in
      let query = [| 20.; 80. |] in
      let k = min 3 n in
      let expected =
        Linear_scan.nearest ~dist:euclid items ~query ~k |> List.map snd
      in
      let actual = Vp_tree.nearest tree ~query ~k |> List.map snd in
      List.for_all2 (fun a b -> Float.abs (a -. b) <= 1e-9) expected actual)

let properties =
  List.map QCheck_alcotest.to_alcotest
    [ prop_vp_range_equivalence; prop_vp_nn_equivalence ]

let () =
  Alcotest.run "simq_metric"
    [
      ( "metric",
        [
          Alcotest.test_case "counted wrapper" `Quick test_counted;
          Alcotest.test_case "euclid satisfies axioms" `Quick test_axioms_euclid;
          Alcotest.test_case "detects violations" `Quick
            test_axioms_detect_violation;
        ] );
      ( "vp_tree",
        [
          Alcotest.test_case "range = linear scan" `Quick
            test_vp_range_matches_linear;
          Alcotest.test_case "nearest = linear scan" `Quick
            test_vp_nearest_matches_linear;
          Alcotest.test_case "string metric" `Quick test_vp_on_strings;
          Alcotest.test_case "prunes distance calls" `Quick
            test_vp_prunes_distance_calls;
          Alcotest.test_case "empty" `Quick test_vp_empty;
          Alcotest.test_case "duplicates" `Quick test_vp_duplicates;
        ] );
      ( "bk_tree",
        [
          Alcotest.test_case "range = linear scan" `Quick
            test_bk_range_matches_linear;
          Alcotest.test_case "duplicates" `Quick test_bk_duplicates;
          Alcotest.test_case "huge radius" `Quick test_bk_radius_covers_all;
        ] );
      ("properties", properties);
    ]
