open Simq_dsp

let check_float = Alcotest.(check (float 1e-9))
let check_float_loose = Alcotest.(check (float 1e-6))

let complex_array_testable eps =
  Alcotest.testable Cpx.pp_array (fun a b -> Cpx.close_arrays ~eps a b)

let check_cpx_arrays ?(eps = 1e-9) msg expected actual =
  Alcotest.check (complex_array_testable eps) msg expected actual

(* Deterministic pseudo-random signal helper for unit tests. *)
let random_signal seed n =
  let state = Random.State.make [| seed |] in
  Array.init n (fun _ -> Random.State.float state 100. -. 50.)

(* --- Cpx ------------------------------------------------------------- *)

let test_cpx_polar_roundtrip () =
  let z = Cpx.make 3. (-4.) in
  let z' = Cpx.polar (Cpx.abs z) (Cpx.angle z) in
  Alcotest.(check bool) "roundtrip" true (Cpx.close ~eps:1e-12 z z')

let test_cpx_arithmetic () =
  let a = Cpx.make 1. 2. and b = Cpx.make 3. (-1.) in
  check_float "re of product" 5. (Cpx.re (Cpx.mul a b));
  check_float "im of product" 5. (Cpx.im (Cpx.mul a b));
  check_float "re of sum" 4. (Cpx.re (Cpx.add a b));
  check_float "scale" 2.5 (Cpx.re (Cpx.scale 2.5 Cpx.one))

let test_cpx_root_of_unity () =
  let w = Cpx.root_of_unity 4 1 in
  Alcotest.(check bool) "e^(-i pi/2) = -i" true
    (Cpx.close ~eps:1e-12 w (Cpx.make 0. (-1.)))

let test_cpx_array_ops_mismatch () =
  Alcotest.check_raises "mul_arrays mismatch"
    (Invalid_argument "Cpx.mul_arrays: length mismatch (2 vs 3)") (fun () ->
      ignore (Cpx.mul_arrays [| Cpx.one; Cpx.one |] [| Cpx.one; Cpx.one; Cpx.one |]))

(* --- Dft -------------------------------------------------------------- *)

let test_dft_constant_signal () =
  (* DFT of a constant c over n points: X_0 = c·sqrt n, rest 0. *)
  let n = 8 in
  let x = Array.make n 5. in
  let coeffs = Dft.dft_real x in
  check_float "X_0" (5. *. sqrt (float_of_int n)) (Cpx.re coeffs.(0));
  for f = 1 to n - 1 do
    check_float "X_f re" 0. (Cpx.re coeffs.(f));
    check_float "X_f im" 0. (Cpx.im coeffs.(f))
  done

let test_dft_inverse_roundtrip () =
  let x = Cpx.of_real_array (random_signal 42 17) in
  check_cpx_arrays ~eps:1e-9 "idft (dft x) = x" x (Dft.idft (Dft.dft x))

let test_dft_linearity () =
  let x = Cpx.of_real_array (random_signal 1 12)
  and y = Cpx.of_real_array (random_signal 2 12) in
  let lhs =
    Dft.dft (Cpx.add_arrays (Cpx.scale_array 2. x) (Cpx.scale_array (-3.) y))
  in
  let rhs =
    Cpx.add_arrays
      (Cpx.scale_array 2. (Dft.dft x))
      (Cpx.scale_array (-3.) (Dft.dft y))
  in
  check_cpx_arrays ~eps:1e-9 "linearity" rhs lhs

let test_dft_coefficients_prefix () =
  let x = random_signal 3 16 in
  let full = Dft.dft_real x in
  let prefix = Dft.coefficients 4 x in
  check_cpx_arrays "prefix agrees" (Array.sub full 0 4) prefix;
  Alcotest.check_raises "k too large"
    (Invalid_argument "Dft.coefficients: k exceeds signal length") (fun () ->
      ignore (Dft.coefficients 17 x))

let test_dft_empty () =
  Alcotest.(check int) "empty" 0 (Array.length (Dft.dft [||]))

(* --- Fft -------------------------------------------------------------- *)

let test_fft_matches_dft_pow2 () =
  let x = Cpx.of_real_array (random_signal 7 64) in
  check_cpx_arrays ~eps:1e-8 "fft = dft (n=64)" (Dft.dft x) (Fft.fft x)

let test_fft_matches_dft_arbitrary () =
  List.iter
    (fun n ->
      let x = Cpx.of_real_array (random_signal (100 + n) n) in
      check_cpx_arrays ~eps:1e-7
        (Printf.sprintf "fft = dft (n=%d)" n)
        (Dft.dft x) (Fft.fft x))
    [ 1; 2; 3; 5; 12; 15; 31; 100; 127 ]

let test_fft_inverse_roundtrip () =
  List.iter
    (fun n ->
      let x = Cpx.of_real_array (random_signal n n) in
      check_cpx_arrays ~eps:1e-8
        (Printf.sprintf "ifft (fft x) = x (n=%d)" n)
        x
        (Fft.ifft (Fft.fft x)))
    [ 4; 9; 16; 33; 128 ]

let test_fft_prime_sizes () =
  (* Bluestein must handle awkward primes. *)
  List.iter
    (fun n ->
      let x = Cpx.of_real_array (random_signal (n * 3) n) in
      check_cpx_arrays ~eps:1e-6
        (Printf.sprintf "prime n=%d" n)
        (Dft.dft x) (Fft.fft x))
    [ 7; 97; 251 ]

let test_fft_impulse () =
  (* The DFT of a unit impulse is flat: every coefficient 1/sqrt n. *)
  let n = 16 in
  let x = Array.init n (fun idx -> if idx = 0 then 1. else 0.) in
  let coeffs = Fft.fft_real x in
  let expected = 1. /. sqrt (float_of_int n) in
  Array.iter
    (fun c ->
      check_float "flat magnitude" expected (Cpx.re c);
      check_float "no phase" 0. (Cpx.im c))
    coeffs

let test_power_of_two_helpers () =
  Alcotest.(check bool) "1 is pow2" true (Fft.is_power_of_two 1);
  Alcotest.(check bool) "64 is pow2" true (Fft.is_power_of_two 64);
  Alcotest.(check bool) "12 is not" false (Fft.is_power_of_two 12);
  Alcotest.(check bool) "0 is not" false (Fft.is_power_of_two 0);
  Alcotest.(check int) "next of 1" 1 (Fft.next_power_of_two 1);
  Alcotest.(check int) "next of 65" 128 (Fft.next_power_of_two 65)

(* --- Convolution ------------------------------------------------------ *)

let test_convolution_identity_kernel () =
  (* Convolving with the delta kernel returns the signal unchanged. *)
  let x = random_signal 11 10 in
  let delta = Array.init 10 (fun idx -> if idx = 0 then 1. else 0.) in
  let y = Convolution.circular_real x delta in
  Array.iteri (fun idx v -> check_float "delta conv" x.(idx) v) y

let test_convolution_commutative () =
  let x = Cpx.of_real_array (random_signal 5 13)
  and y = Cpx.of_real_array (random_signal 6 13) in
  check_cpx_arrays ~eps:1e-7 "commutative" (Convolution.circular x y)
    (Convolution.circular y x)

let test_convolution_fft_agrees () =
  List.iter
    (fun n ->
      let x = Cpx.of_real_array (random_signal (n + 1) n)
      and y = Cpx.of_real_array (random_signal (n + 2) n) in
      check_cpx_arrays ~eps:1e-6
        (Printf.sprintf "fft conv (n=%d)" n)
        (Convolution.circular x y)
        (Convolution.circular_fft x y))
    [ 8; 15; 32 ]

let test_convolution_mismatch () =
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Convolution.circular: length mismatch") (fun () ->
      ignore (Convolution.circular [| Cpx.one |] [| Cpx.one; Cpx.one |]))

(* --- Window ----------------------------------------------------------- *)

let test_window_uniform () =
  let w = Window.uniform 4 in
  Alcotest.(check int) "width" 4 (Window.width w);
  let k = Window.kernel 8 w in
  check_float "weight" 0.25 k.(0);
  check_float "padding" 0. k.(5)

let test_window_weights_sum_to_one () =
  let sum w =
    Array.fold_left ( +. ) 0. (Window.kernel 16 w)
  in
  check_float_loose "uniform" 1. (sum (Window.uniform 5));
  check_float_loose "triangular" 1. (sum (Window.triangular 5));
  check_float_loose "ascending" 1. (sum (Window.ascending 5));
  check_float_loose "exponential" 1. (sum (Window.exponential ~alpha:0.3 5));
  check_float_loose "custom" 1. (sum (Window.custom [| 3.; 1.; 1. |]))

let test_window_ascending_orders_weights () =
  let w = Window.ascending 3 in
  let k = Window.kernel 4 w in
  Alcotest.(check bool) "recent day heaviest" true (k.(0) > k.(1) && k.(1) > k.(2))

let test_window_invalid () =
  Alcotest.check_raises "zero width" (Invalid_argument "Window.uniform")
    (fun () -> ignore (Window.uniform 0));
  Alcotest.check_raises "bad alpha"
    (Invalid_argument "Window.exponential: alpha must be in (0, 1]") (fun () ->
      ignore (Window.exponential ~alpha:1.5 3));
  Alcotest.check_raises "zero-sum weights"
    (Invalid_argument "Window.custom: weights sum to zero") (fun () ->
      ignore (Window.custom [| 1.; -1. |]));
  Alcotest.check_raises "window wider than signal"
    (Invalid_argument "Window.kernel: window wider than signal") (fun () ->
      ignore (Window.kernel 2 (Window.uniform 3)))

let test_window_transfer_dc_gain () =
  (* Weights sum to 1, so the DC gain H_0 is 1 for every window. *)
  List.iter
    (fun w ->
      let h = Window.transfer 32 w in
      check_float_loose "H_0 real" 1. (Cpx.re h.(0));
      check_float_loose "H_0 imaginary" 0. (Cpx.im h.(0)))
    [
      Window.uniform 5; Window.triangular 7; Window.ascending 4;
      Window.exponential ~alpha:0.4 6; Window.custom [| 2.; 1. |];
    ]

let test_window_transfer_is_moving_average () =
  (* Multiplying the spectrum by the transfer function must equal the
     time-domain circular convolution with the kernel. *)
  let x = random_signal 21 16 in
  let w = Window.uniform 3 in
  let time_domain = Convolution.circular_real x (Window.kernel 16 w) in
  let freq =
    Fft.ifft (Cpx.mul_arrays (Window.transfer 16 w) (Fft.fft_real x))
  in
  Array.iteri
    (fun idx v -> check_float_loose "transfer = conv" time_domain.(idx) v)
    (Cpx.re_array freq)

(* --- Spectrum --------------------------------------------------------- *)

let test_parseval () =
  let x = random_signal 31 20 in
  check_float_loose "Parseval" (Spectrum.energy_real x)
    (Spectrum.energy (Fft.fft_real x))

let test_distance_preserved_by_dft () =
  let x = random_signal 41 32 and y = random_signal 42 32 in
  let time =
    Spectrum.distance (Cpx.of_real_array x) (Cpx.of_real_array y)
  in
  let freq = Spectrum.distance (Fft.fft_real x) (Fft.fft_real y) in
  check_float_loose "Eq. 8" time freq

let test_prefix_distance_lower_bound () =
  let x = Fft.fft_real (random_signal 51 64)
  and y = Fft.fft_real (random_signal 52 64) in
  let full = Spectrum.distance x y in
  for k = 0 to 64 do
    Alcotest.(check bool)
      (Printf.sprintf "prefix %d <= full" k)
      true
      (Spectrum.prefix_distance k x y <= full +. 1e-9)
  done

let test_early_abandon () =
  let x = Fft.fft_real (random_signal 61 32)
  and y = Fft.fft_real (random_signal 62 32) in
  let full = Spectrum.distance x y in
  (match Spectrum.distance_early_abandon ~threshold:(full +. 1.) x y with
  | Some d -> check_float_loose "within threshold returns distance" full d
  | None -> Alcotest.fail "should not abandon");
  (match Spectrum.distance_early_abandon ~threshold:(full /. 2.) x y with
  | None -> ()
  | Some _ -> Alcotest.fail "should abandon")

let test_concentration_random_walk () =
  (* Brown-noise-like signals concentrate energy in low frequencies. *)
  let state = Random.State.make [| 9 |] in
  let n = 128 in
  let x = Array.make n 0. in
  x.(0) <- 50.;
  for t = 1 to n - 1 do
    x.(t) <- x.(t - 1) +. Random.State.float state 8. -. 4.
  done;
  let c = Spectrum.concentration 4 x in
  Alcotest.(check bool) "first 4 coeffs carry most energy" true (c > 0.9)

let test_concentration_zero_signal () =
  check_float "zero signal" 1. (Spectrum.concentration 3 (Array.make 8 0.))

(* --- property-based tests -------------------------------------------- *)

let signal_gen =
  QCheck.Gen.(
    let* n = int_range 1 64 in
    array_size (return n) (float_range (-100.) 100.))

let arb_signal = QCheck.make ~print:QCheck.Print.(array float) signal_gen

let prop_fft_roundtrip =
  QCheck.Test.make ~name:"ifft . fft = id" ~count:100 arb_signal (fun x ->
      let back = Fft.ifft (Fft.fft_real x) in
      Cpx.close_arrays ~eps:1e-6 (Cpx.of_real_array x) back)

let prop_fft_equals_dft =
  QCheck.Test.make ~name:"fft = dft" ~count:50 arb_signal (fun x ->
      Cpx.close_arrays ~eps:1e-6 (Dft.dft_real x) (Fft.fft_real x))

let prop_parseval =
  QCheck.Test.make ~name:"Parseval holds" ~count:100 arb_signal (fun x ->
      let te = Spectrum.energy_real x in
      let fe = Spectrum.energy (Fft.fft_real x) in
      Float.abs (te -. fe) <= 1e-6 *. (1. +. te))

let prop_convolution_theorem =
  QCheck.Test.make ~name:"DFT(conv x y) = sqrt n * X * Y" ~count:50
    (QCheck.pair arb_signal arb_signal) (fun (x, y) ->
      let n = min (Array.length x) (Array.length y) in
      QCheck.assume (n >= 1);
      let x = Array.sub x 0 n and y = Array.sub y 0 n in
      let conv = Convolution.circular_real x y in
      let lhs = Fft.fft_real conv in
      let rhs =
        Cpx.scale_array
          (sqrt (float_of_int n))
          (Cpx.mul_arrays (Fft.fft_real x) (Fft.fft_real y))
      in
      Cpx.close_arrays ~eps:1e-4 lhs rhs)

let prop_early_abandon_agrees =
  QCheck.Test.make ~name:"early abandon agrees with distance" ~count:100
    (QCheck.triple arb_signal arb_signal QCheck.pos_float)
    (fun (x, y, threshold) ->
      let n = min (Array.length x) (Array.length y) in
      QCheck.assume (n >= 1);
      let x = Cpx.of_real_array (Array.sub x 0 n)
      and y = Cpx.of_real_array (Array.sub y 0 n) in
      let d = Spectrum.distance x y in
      match Spectrum.distance_early_abandon ~threshold x y with
      | Some d' -> Float.abs (d -. d') <= 1e-9
      | None -> d > threshold -. 1e-9)

let properties =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_fft_roundtrip;
      prop_fft_equals_dft;
      prop_parseval;
      prop_convolution_theorem;
      prop_early_abandon_agrees;
    ]

let () =
  Alcotest.run "simq_dsp"
    [
      ( "cpx",
        [
          Alcotest.test_case "polar roundtrip" `Quick test_cpx_polar_roundtrip;
          Alcotest.test_case "arithmetic" `Quick test_cpx_arithmetic;
          Alcotest.test_case "root of unity" `Quick test_cpx_root_of_unity;
          Alcotest.test_case "array mismatch" `Quick test_cpx_array_ops_mismatch;
        ] );
      ( "dft",
        [
          Alcotest.test_case "constant signal" `Quick test_dft_constant_signal;
          Alcotest.test_case "inverse roundtrip" `Quick test_dft_inverse_roundtrip;
          Alcotest.test_case "linearity" `Quick test_dft_linearity;
          Alcotest.test_case "coefficient prefix" `Quick test_dft_coefficients_prefix;
          Alcotest.test_case "empty signal" `Quick test_dft_empty;
        ] );
      ( "fft",
        [
          Alcotest.test_case "matches dft, power of two" `Quick
            test_fft_matches_dft_pow2;
          Alcotest.test_case "matches dft, arbitrary n" `Quick
            test_fft_matches_dft_arbitrary;
          Alcotest.test_case "inverse roundtrip" `Quick test_fft_inverse_roundtrip;
          Alcotest.test_case "prime sizes (Bluestein)" `Quick test_fft_prime_sizes;
          Alcotest.test_case "impulse" `Quick test_fft_impulse;
          Alcotest.test_case "power-of-two helpers" `Quick test_power_of_two_helpers;
        ] );
      ( "convolution",
        [
          Alcotest.test_case "identity kernel" `Quick test_convolution_identity_kernel;
          Alcotest.test_case "commutative" `Quick test_convolution_commutative;
          Alcotest.test_case "fft agrees with direct" `Quick test_convolution_fft_agrees;
          Alcotest.test_case "length mismatch" `Quick test_convolution_mismatch;
        ] );
      ( "window",
        [
          Alcotest.test_case "uniform" `Quick test_window_uniform;
          Alcotest.test_case "weights sum to one" `Quick test_window_weights_sum_to_one;
          Alcotest.test_case "ascending order" `Quick test_window_ascending_orders_weights;
          Alcotest.test_case "invalid windows" `Quick test_window_invalid;
          Alcotest.test_case "transfer DC gain" `Quick test_window_transfer_dc_gain;
          Alcotest.test_case "transfer = moving average" `Quick
            test_window_transfer_is_moving_average;
        ] );
      ( "spectrum",
        [
          Alcotest.test_case "Parseval" `Quick test_parseval;
          Alcotest.test_case "distance preserved (Eq. 8)" `Quick
            test_distance_preserved_by_dft;
          Alcotest.test_case "prefix distance lower bound" `Quick
            test_prefix_distance_lower_bound;
          Alcotest.test_case "early abandon" `Quick test_early_abandon;
          Alcotest.test_case "random-walk concentration" `Quick
            test_concentration_random_walk;
          Alcotest.test_case "zero-signal concentration" `Quick
            test_concentration_zero_signal;
        ] );
      ("properties", properties);
    ]
