open Simq_geometry
module Cpx = Simq_dsp.Cpx

let check_float = Alcotest.(check (float 1e-9))
let check_close eps = Alcotest.(check (float eps))

let rect_testable = Alcotest.testable Rect.pp (fun a b -> Rect.equal a b)
let point_testable = Alcotest.testable Point.pp (fun a b -> Point.equal a b)

let rect lo hi = Rect.create ~lo ~hi

(* --- Point ------------------------------------------------------------ *)

let test_point_distance () =
  check_float "3-4-5" 5. (Point.distance [| 0.; 0. |] [| 3.; 4. |]);
  check_float "squared" 25. (Point.squared_distance [| 0.; 0. |] [| 3.; 4. |]);
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Point.squared_distance: dimension mismatch") (fun () ->
      ignore (Point.distance [| 0. |] [| 1.; 2. |]))

let test_point_create_rejects_nan () =
  Alcotest.check_raises "nan"
    (Invalid_argument "Point.create: non-finite coordinate") (fun () ->
      ignore (Point.create [| Float.nan |]))

(* --- Rect ------------------------------------------------------------- *)

let test_rect_create_normalises () =
  let r = rect [| 5.; 1. |] [| 1.; 5. |] in
  Alcotest.check rect_testable "swapped bounds" (rect [| 1.; 1. |] [| 5.; 5. |]) r

let test_rect_contains () =
  let r = rect [| 0.; 0. |] [| 10.; 10. |] in
  Alcotest.(check bool) "inside" true (Rect.contains_point r [| 5.; 5. |]);
  Alcotest.(check bool) "boundary" true (Rect.contains_point r [| 0.; 10. |]);
  Alcotest.(check bool) "boundary not strict" false
    (Rect.contains_point_strict r [| 0.; 5. |]);
  Alcotest.(check bool) "outside" false (Rect.contains_point r [| 11.; 5. |]);
  Alcotest.(check bool) "contains rect" true
    (Rect.contains_rect r (rect [| 1.; 1. |] [| 2.; 2. |]));
  Alcotest.(check bool) "not contains rect" false
    (Rect.contains_rect r (rect [| 1.; 1. |] [| 11.; 2. |]))

let test_rect_set_ops () =
  let a = rect [| 0.; 0. |] [| 4.; 4. |] in
  let b = rect [| 2.; 2. |] [| 6.; 6. |] in
  Alcotest.(check bool) "intersects" true (Rect.intersects a b);
  (match Rect.intersection a b with
  | Some r ->
    Alcotest.check rect_testable "intersection" (rect [| 2.; 2. |] [| 4.; 4. |]) r
  | None -> Alcotest.fail "expected intersection");
  Alcotest.check rect_testable "union" (rect [| 0.; 0. |] [| 6.; 6. |])
    (Rect.union a b);
  check_float "overlap area" 4. (Rect.overlap_area a b);
  let far = rect [| 10.; 10. |] [| 11.; 11. |] in
  Alcotest.(check bool) "disjoint" false (Rect.intersects a far);
  check_float "overlap disjoint" 0. (Rect.overlap_area a far)

let test_rect_measures () =
  let r = rect [| 0.; 0.; 0. |] [| 2.; 3.; 4. |] in
  check_float "area" 24. (Rect.area r);
  check_float "margin" 9. (Rect.margin r);
  check_float "enlargement none" 0.
    (Rect.enlargement r ~extra:(rect [| 1.; 1.; 1. |] [| 2.; 2.; 2. |]));
  Alcotest.check point_testable "center" [| 1.; 1.5; 2. |] (Rect.center r)

let test_rect_of_points () =
  let r = Rect.of_points [ [| 1.; 5. |]; [| 3.; 2. |]; [| 2.; 7. |] ] in
  Alcotest.check rect_testable "mbr" (rect [| 1.; 2. |] [| 3.; 7. |]) r

let test_mindist () =
  let r = rect [| 0.; 0. |] [| 2.; 2. |] in
  check_float "inside" 0. (Rect.mindist [| 1.; 1. |] r);
  check_float "left" 1. (Rect.mindist [| -1.; 1. |] r);
  check_float "corner" (sqrt 2.) (Rect.mindist [| 3.; 3. |] r)

let test_minmaxdist_bounds () =
  (* MINDIST <= distance-to-some-point <= MINMAXDIST for the nearest
     corner-ish point; we check the standard sandwich property on random
     configurations. *)
  let state = Random.State.make [| 77 |] in
  for _ = 1 to 200 do
    let coord () = Random.State.float state 20. -. 10. in
    let lo = [| coord (); coord () |] and hi = [| coord (); coord () |] in
    let r = rect lo hi in
    let p = [| coord (); coord () |] in
    let mind = Rect.mindist p r and minmax = Rect.minmaxdist p r in
    Alcotest.(check bool) "mindist <= minmaxdist" true (mind <= minmax +. 1e-9);
    (* MINMAXDIST is attained by some point on the boundary: verify it
       upper-bounds the distance to the nearest corner along one face. *)
    let corners =
      [
        [| r.Rect.lo.(0); r.Rect.lo.(1) |];
        [| r.Rect.lo.(0); r.Rect.hi.(1) |];
        [| r.Rect.hi.(0); r.Rect.lo.(1) |];
        [| r.Rect.hi.(0); r.Rect.hi.(1) |];
      ]
    in
    let nearest_corner =
      List.fold_left
        (fun acc c -> Float.min acc (Point.distance p c))
        Float.infinity corners
    in
    Alcotest.(check bool) "mindist <= nearest corner" true
      (mind <= nearest_corner +. 1e-9);
    Alcotest.(check bool) "nearest corner >= minmaxdist not guaranteed; \
                           minmaxdist <= farthest corner" true
      (minmax
      <= List.fold_left
           (fun acc c -> Float.max acc (Point.distance p c))
           0. corners
         +. 1e-9)
  done

let test_minmaxdist_known_value () =
  (* Point at the origin, square [1,2]x[1,2]: the nearest face along one
     axis plus the farthest along the other gives min(1+4, 4+1) = 5. *)
  let r = rect [| 1.; 1. |] [| 2.; 2. |] in
  check_close 1e-9 "known value" (sqrt 5.) (Rect.minmaxdist [| 0.; 0. |] r)

let test_mindist_inside_is_zero () =
  let r = rect [| 0.; 0. |] [| 4.; 4. |] in
  check_float "centre" 0. (Rect.mindist [| 2.; 2. |] r);
  check_float "face" 0. (Rect.mindist [| 0.; 2. |] r)

let test_coords_decode_odd_dims () =
  Alcotest.check_raises "odd dims"
    (Invalid_argument "Coords.decode: odd dimension count") (fun () ->
      ignore (Coords.decode Coords.Rectangular [| 1.; 2.; 3. |]))

let test_region_full_circle_meets_everything () =
  Alcotest.(check bool) "full circle" true
    (Region.meets_interval Region.full_circle ~lo:123. ~hi:124.);
  Alcotest.(check bool) "contains any angle" true
    (Region.contains_value Region.full_circle 55.)

(* --- Linear transform ------------------------------------------------- *)

let test_lt_apply () =
  let t = Linear_transform.create ~a:[| 2.; -1. |] ~b:[| 1.; 0. |] in
  Alcotest.check point_testable "apply" [| 7.; -4. |]
    (Linear_transform.apply t [| 3.; 4. |])

let test_lt_identity () =
  let id = Linear_transform.identity 3 in
  Alcotest.(check bool) "is identity" true (Linear_transform.is_identity id);
  Alcotest.check point_testable "apply id" [| 1.; 2.; 3. |]
    (Linear_transform.apply id [| 1.; 2.; 3. |])

let test_lt_negative_stretch_safe () =
  (* Theorem 1 with negative stretch: rectangle maps to rectangle with
     bounds renormalised. *)
  let t = Linear_transform.create ~a:[| -1.; 2. |] ~b:[| 0.; 1. |] in
  let r = rect [| 1.; 1. |] [| 2.; 3. |] in
  let r' = Linear_transform.apply_rect t r in
  Alcotest.check rect_testable "image" (rect [| -2.; 3. |] [| -1.; 7. |]) r'

let test_lt_compose_inverse () =
  let f = Linear_transform.create ~a:[| 2.; 3. |] ~b:[| 1.; -1. |] in
  let g = Linear_transform.create ~a:[| -1.; 0.5 |] ~b:[| 0.; 2. |] in
  let p = [| 5.; 7. |] in
  Alcotest.check point_testable "compose"
    (Linear_transform.apply f (Linear_transform.apply g p))
    (Linear_transform.apply (Linear_transform.compose f g) p);
  (match Linear_transform.inverse f with
  | Some f_inv ->
    Alcotest.check point_testable "inverse" p
      (Linear_transform.apply f_inv (Linear_transform.apply f p))
  | None -> Alcotest.fail "invertible");
  let singular = Linear_transform.create ~a:[| 0.; 1. |] ~b:[| 0.; 0. |] in
  Alcotest.(check bool) "singular has no inverse" true
    (Option.is_none (Linear_transform.inverse singular))

(* --- Complex transform & safety theory -------------------------------- *)

let test_ct_apply () =
  let t =
    Complex_transform.create
      ~a:[| Cpx.make 0. 1. |]
      ~b:[| Cpx.make 1. 1. |]
  in
  let y = Complex_transform.apply t [| Cpx.make 2. 0. |] in
  Alcotest.(check bool) "j*2 + (1+j) = 1+3j" true
    (Cpx.close y.(0) (Cpx.make 1. 3.))

let test_ct_reverse () =
  let t = Complex_transform.reverse 2 in
  let y = Complex_transform.apply t [| Cpx.make 1. 2.; Cpx.make (-3.) 4. |] in
  Alcotest.(check bool) "negated" true
    (Cpx.close y.(0) (Cpx.make (-1.) (-2.)) && Cpx.close y.(1) (Cpx.make 3. (-4.)))

let test_theorem2_lowering () =
  (* Real stretch, complex translation: lowering to S_rect commutes with
     encoding. *)
  let t =
    Complex_transform.create
      ~a:[| Cpx.of_float 2.; Cpx.of_float (-0.5) |]
      ~b:[| Cpx.make 1. (-1.); Cpx.make 0. 3. |]
  in
  let lowered = Complex_transform.to_rectangular t in
  let x = [| Cpx.make 3. 4.; Cpx.make (-1.) 2. |] in
  let via_complex =
    Coords.encode Coords.Rectangular (Complex_transform.apply t x)
  in
  let via_lowered =
    Linear_transform.apply lowered (Coords.encode Coords.Rectangular x)
  in
  Alcotest.check point_testable "commutes" via_complex via_lowered

let test_theorem3_lowering () =
  (* Complex stretch, zero translation: lowering to S_pol commutes with
     encoding, up to angle normalisation. *)
  let t =
    Complex_transform.stretch [| Cpx.polar 2. 0.7; Cpx.polar 0.5 (-1.2) |]
  in
  let lowered = Complex_transform.to_polar t in
  let x = [| Cpx.polar 3. 0.3; Cpx.polar 1. 2.9 |] in
  let via_complex = Complex_transform.apply t x in
  let encoded = Coords.encode Coords.Polar x in
  let moved = Linear_transform.apply lowered encoded in
  (* Compare as complex numbers so that angle wrap-around is ignored. *)
  let decoded = Coords.decode Coords.Polar moved in
  Alcotest.(check bool) "commutes" true
    (Cpx.close_arrays ~eps:1e-9 via_complex decoded)

let test_unsafe_lowerings_rejected () =
  let complex_stretch = Complex_transform.stretch [| Cpx.make 2. (-3.) |] in
  (try
     ignore (Complex_transform.to_rectangular complex_stretch);
     Alcotest.fail "expected Unsafe"
   with Complex_transform.Unsafe _ -> ());
  let with_translation =
    Complex_transform.create ~a:[| Cpx.make 2. (-3.) |] ~b:[| Cpx.one |]
  in
  try
    ignore (Complex_transform.to_polar with_translation);
    Alcotest.fail "expected Unsafe"
  with Complex_transform.Unsafe _ -> ()

let test_paper_counterexample_srect () =
  (* Section 3.1: multiplying by s = 2-3j maps the rectangle
     [-5-5j, 5+5j] to one that no longer contains the image of the
     interior point r = -2+2j: complex stretches are unsafe in S_rect. *)
  let s = Cpx.make 2. (-3.) in
  let p = Cpx.make (-5.) (-5.)
  and q = Cpx.make 5. 5.
  and r = Cpx.make (-2.) 2. in
  let encode z = Coords.encode Coords.Rectangular [| z |] in
  let original =
    Rect.union (Rect.of_point (encode p)) (Rect.of_point (encode q))
  in
  Alcotest.(check bool) "r inside original" true
    (Rect.contains_point original (encode r));
  let image =
    Rect.union
      (Rect.of_point (encode (Cpx.mul p s)))
      (Rect.of_point (encode (Cpx.mul q s)))
  in
  Alcotest.(check bool) "image of r escapes the image rectangle" false
    (Rect.contains_point image (encode (Cpx.mul r s)))

(* --- Coords ----------------------------------------------------------- *)

let test_coords_roundtrip () =
  let x = [| Cpx.make 1. 2.; Cpx.make (-3.) 0.5 |] in
  List.iter
    (fun rep ->
      let back = Coords.decode rep (Coords.encode rep x) in
      Alcotest.(check bool) "roundtrip" true (Cpx.close_arrays ~eps:1e-9 x back))
    [ Coords.Rectangular; Coords.Polar ]

let test_coords_rect_distance_preserved () =
  let x = [| Cpx.make 1. 2.; Cpx.make (-3.) 0.5 |] in
  let y = [| Cpx.make 0. 1.; Cpx.make 2. 2. |] in
  let complex_d = Simq_dsp.Spectrum.distance x y in
  let rect_d =
    Point.distance
      (Coords.encode Coords.Rectangular x)
      (Coords.encode Coords.Rectangular y)
  in
  check_close 1e-9 "S_rect preserves distance" complex_d rect_d

let test_coords_polar_distance_exact () =
  let x = [| Cpx.polar 2. 0.4 |] and y = [| Cpx.polar 3. (-2.9) |] in
  let complex_d = Simq_dsp.Spectrum.distance x y in
  let bound =
    Coords.distance_lower_bound Coords.Polar
      (Coords.encode Coords.Polar x)
      (Coords.encode Coords.Polar y)
  in
  check_close 1e-9 "polar law of cosines" complex_d bound

let test_search_region_rectangular () =
  let q = [| Cpx.make 1. 2. |] in
  let region = Coords.search_region Coords.Rectangular ~query:q ~epsilon:0.5 in
  Alcotest.(check bool) "query inside" true
    (Region.contains region (Coords.encode Coords.Rectangular q));
  Alcotest.(check bool) "nearby inside" true
    (Region.contains region [| 1.4; 1.6 |]);
  Alcotest.(check bool) "far outside" false
    (Region.contains region [| 2.; 2. |])

let test_search_region_polar_figure7 () =
  (* Figure 7: magnitude in [m-eps, m+eps], angle within asin(eps/m). *)
  let m = 2. and alpha = 0.3 and epsilon = 0.5 in
  let q = [| Cpx.polar m alpha |] in
  let region = Coords.search_region Coords.Polar ~query:q ~epsilon in
  let delta = asin (epsilon /. m) in
  Alcotest.(check bool) "boundary angle inside" true
    (Region.contains region [| m; alpha +. (delta *. 0.999) |]);
  Alcotest.(check bool) "beyond angle outside" false
    (Region.contains region [| m; alpha +. (delta *. 1.5) |]);
  Alcotest.(check bool) "magnitude band" true
    (Region.contains region [| m +. (epsilon *. 0.999); alpha |]);
  Alcotest.(check bool) "outside magnitude band" false
    (Region.contains region [| m +. (epsilon *. 1.5); alpha |])

let test_search_region_polar_wraps () =
  (* A query near the -pi/pi seam keeps nearby points on the other side
     of the seam inside the region. *)
  let q = [| Cpx.polar 5. (Float.pi -. 0.01) |] in
  let region = Coords.search_region Coords.Polar ~query:q ~epsilon:0.5 in
  let other_side = [| 5.; -.Float.pi +. 0.02 |] in
  Alcotest.(check bool) "wraps across the seam" true
    (Region.contains region other_side)

let test_search_region_small_magnitude () =
  (* eps >= magnitude: the angle is unconstrained. *)
  let q = [| Cpx.polar 0.3 1. |] in
  let region = Coords.search_region Coords.Polar ~query:q ~epsilon:0.5 in
  Alcotest.(check bool) "any angle" true (Region.contains region [| 0.4; -3. |])

(* --- Region ----------------------------------------------------------- *)

let test_region_intersects_rect () =
  let region =
    [| Region.linear ~lo:0. ~hi:2.; Region.circular ~lo:3. ~hi:4. |]
  in
  (* The arc [3,4] wraps: angle 3.5 - 2pi ≈ -2.78 also belongs to it. *)
  let touching = rect [| 1.; -2.8 |] [| 3.; -2.7 |] in
  Alcotest.(check bool) "wrapped overlap" true
    (Region.intersects_rect region touching);
  let miss = rect [| 1.; 0. |] [| 3.; 1. |] in
  Alcotest.(check bool) "no overlap" false (Region.intersects_rect region miss)

let test_region_of_rect () =
  let r = rect [| 0.; 1. |] [| 2.; 3. |] in
  let region = Region.of_rect r in
  Alcotest.(check bool) "inside" true (Region.contains region [| 1.; 2. |]);
  Alcotest.(check bool) "outside" false (Region.contains region [| 1.; 4. |])

(* --- properties -------------------------------------------------------- *)

let arb_transform_and_rect_and_point =
  let gen =
    QCheck.Gen.(
      let dim = 3 in
      let coeff = float_range (-5.) 5. in
      let* a = array_size (return dim) coeff in
      let* b = array_size (return dim) coeff in
      let* lo = array_size (return dim) (float_range (-10.) 10.) in
      let* hi = array_size (return dim) (float_range (-10.) 10.) in
      let* p = array_size (return dim) (float_range (-10.) 10.) in
      return (a, b, lo, hi, p))
  in
  QCheck.make gen

let prop_theorem1_safety =
  (* Safe transformations map interior points to interior points and
     exterior points to exterior points — for invertible stretches. *)
  QCheck.Test.make ~name:"Theorem 1: real transforms are safe" ~count:300
    arb_transform_and_rect_and_point (fun (a, b, lo, hi, p) ->
      QCheck.assume (Array.for_all (fun v -> Float.abs v > 1e-3) a);
      let t = Linear_transform.create ~a ~b in
      let r = rect lo hi in
      let r' = Linear_transform.apply_rect t r in
      let p' = Linear_transform.apply t p in
      Rect.contains_point r p = Rect.contains_point r' p'
      || (* boundary points can flip due to rounding; tolerate only those *)
      Rect.mindist p' r' < 1e-6)

let prop_polar_region_superset =
  (* Lemma prerequisite: the Figure-7 region contains every point within
     epsilon of the query. *)
  let gen =
    QCheck.Gen.(
      let* m = float_range 0.1 10. in
      let* alpha = float_range (-3.1) 3.1 in
      let* eps = float_range 0.01 3. in
      let* dm = float_range (-1.) 1. in
      let* dtheta = float_range (-3.1) 3.1 in
      return (m, alpha, eps, dm, dtheta))
  in
  QCheck.Test.make ~name:"polar search region contains the eps-ball"
    ~count:500 (QCheck.make gen) (fun (m, alpha, eps, dm, dtheta) ->
      let q = Simq_dsp.Cpx.polar m alpha in
      let x = Simq_dsp.Cpx.polar (Float.max 0. (m +. dm)) (alpha +. dtheta) in
      let d = Simq_dsp.Cpx.abs (Simq_dsp.Cpx.sub q x) in
      QCheck.assume (d <= eps);
      let region = Coords.search_region Coords.Polar ~query:[| q |] ~epsilon:eps in
      Region.contains region (Coords.encode Coords.Polar [| x |]))

let prop_rect_union_contains =
  let gen =
    QCheck.Gen.(
      let dim = 2 in
      let c = float_range (-10.) 10. in
      let* l1 = array_size (return dim) c in
      let* h1 = array_size (return dim) c in
      let* l2 = array_size (return dim) c in
      let* h2 = array_size (return dim) c in
      return (l1, h1, l2, h2))
  in
  QCheck.Test.make ~name:"union contains both rects" ~count:200
    (QCheck.make gen) (fun (l1, h1, l2, h2) ->
      let a = rect l1 h1 and b = rect l2 h2 in
      let u = Rect.union a b in
      Rect.contains_rect u a && Rect.contains_rect u b)

let properties =
  List.map QCheck_alcotest.to_alcotest
    [ prop_theorem1_safety; prop_polar_region_superset; prop_rect_union_contains ]

let () =
  Alcotest.run "simq_geometry"
    [
      ( "point",
        [
          Alcotest.test_case "distance" `Quick test_point_distance;
          Alcotest.test_case "rejects nan" `Quick test_point_create_rejects_nan;
        ] );
      ( "rect",
        [
          Alcotest.test_case "create normalises" `Quick test_rect_create_normalises;
          Alcotest.test_case "contains" `Quick test_rect_contains;
          Alcotest.test_case "set operations" `Quick test_rect_set_ops;
          Alcotest.test_case "measures" `Quick test_rect_measures;
          Alcotest.test_case "of_points" `Quick test_rect_of_points;
          Alcotest.test_case "mindist" `Quick test_mindist;
          Alcotest.test_case "minmaxdist bounds" `Quick test_minmaxdist_bounds;
          Alcotest.test_case "minmaxdist known value" `Quick
            test_minmaxdist_known_value;
          Alcotest.test_case "mindist inside" `Quick test_mindist_inside_is_zero;
        ] );
      ( "linear transform",
        [
          Alcotest.test_case "apply" `Quick test_lt_apply;
          Alcotest.test_case "identity" `Quick test_lt_identity;
          Alcotest.test_case "negative stretch safe" `Quick
            test_lt_negative_stretch_safe;
          Alcotest.test_case "compose and inverse" `Quick test_lt_compose_inverse;
        ] );
      ( "complex transform",
        [
          Alcotest.test_case "apply" `Quick test_ct_apply;
          Alcotest.test_case "reverse" `Quick test_ct_reverse;
          Alcotest.test_case "Theorem 2 lowering" `Quick test_theorem2_lowering;
          Alcotest.test_case "Theorem 3 lowering" `Quick test_theorem3_lowering;
          Alcotest.test_case "unsafe lowerings rejected" `Quick
            test_unsafe_lowerings_rejected;
          Alcotest.test_case "paper counterexample in S_rect" `Quick
            test_paper_counterexample_srect;
        ] );
      ( "coords",
        [
          Alcotest.test_case "roundtrip" `Quick test_coords_roundtrip;
          Alcotest.test_case "S_rect preserves distance" `Quick
            test_coords_rect_distance_preserved;
          Alcotest.test_case "polar law of cosines" `Quick
            test_coords_polar_distance_exact;
          Alcotest.test_case "search region S_rect" `Quick
            test_search_region_rectangular;
          Alcotest.test_case "search region Figure 7" `Quick
            test_search_region_polar_figure7;
          Alcotest.test_case "search region wraps seam" `Quick
            test_search_region_polar_wraps;
          Alcotest.test_case "small magnitude frees the angle" `Quick
            test_search_region_small_magnitude;
          Alcotest.test_case "decode odd dims" `Quick test_coords_decode_odd_dims;
        ] );
      ( "region",
        [
          Alcotest.test_case "intersects rect with wrap" `Quick
            test_region_intersects_rect;
          Alcotest.test_case "of_rect" `Quick test_region_of_rect;
          Alcotest.test_case "full circle" `Quick
            test_region_full_circle_meets_everything;
        ] );
      ("properties", properties);
    ]
