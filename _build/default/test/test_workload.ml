open Simq_workload
module Stats = Simq_series.Stats
module Distance = Simq_series.Distance
module Normal_form = Simq_series.Normal_form

(* --- Stocklike --------------------------------------------------------- *)

let test_stocklike_shape () =
  let s = Stocklike.generate (Random.State.make [| 1 |]) ~n:128 in
  Alcotest.(check int) "length" 128 (Array.length s);
  Array.iter
    (fun v -> Alcotest.(check bool) "positive price" true (v > 0.))
    s

let test_stocklike_reproducible () =
  let a = Stocklike.batch ~seed:42 ~count:5 ~n:64 in
  let b = Stocklike.batch ~seed:42 ~count:5 ~n:64 in
  Array.iteri
    (fun idx s ->
      Alcotest.(check bool) "same" true (Simq_series.Series.equal s b.(idx)))
    a

let test_stocklike_paper_market_scale () =
  let market = Stocklike.paper_market () in
  Alcotest.(check int) "1067 series" 1067 (Array.length market);
  Alcotest.(check int) "128 days" 128 (Array.length market.(0))

let test_stocklike_series_differ () =
  let batch = Stocklike.batch ~seed:7 ~count:10 ~n:64 in
  let distinct = ref true in
  for i = 0 to 8 do
    if Simq_series.Series.equal batch.(i) batch.(i + 1) then distinct := false
  done;
  Alcotest.(check bool) "series differ" true !distinct

let test_correlated_pair () =
  let state = Random.State.make [| 3 |] in
  let a, b = Stocklike.correlated_pair state ~n:256 ~rho:0.95 in
  (* Correlation of log-returns should be close to rho. *)
  let returns s =
    Array.init (Array.length s - 1) (fun t -> log (s.(t + 1) /. s.(t)))
  in
  let corr = Stats.correlation (returns a) (returns b) in
  Alcotest.(check bool)
    (Printf.sprintf "high correlation (%.2f)" corr)
    true (corr > 0.8);
  let state = Random.State.make [| 4 |] in
  let c, d = Stocklike.correlated_pair state ~n:256 ~rho:(-0.95) in
  let anti = Stats.correlation (returns c) (returns d) in
  Alcotest.(check bool)
    (Printf.sprintf "anti correlation (%.2f)" anti)
    true (anti < -0.8)

let test_correlated_pair_validation () =
  Alcotest.check_raises "rho out of range"
    (Invalid_argument "Stocklike.correlated_pair: rho must be in [-1, 1]")
    (fun () ->
      ignore (Stocklike.correlated_pair (Random.State.make [| 1 |]) ~n:8 ~rho:2.))

(* --- Queries ------------------------------------------------------------ *)

let test_threshold_for_count () =
  let distances = [| 5.; 1.; 3.; 2.; 4. |] in
  Alcotest.(check (float 0.)) "1st" 1. (Queries.threshold_for_count distances ~count:1);
  Alcotest.(check (float 0.)) "3rd" 3. (Queries.threshold_for_count distances ~count:3);
  Alcotest.(check (float 0.)) "5th" 5. (Queries.threshold_for_count distances ~count:5);
  Alcotest.check_raises "out of range"
    (Invalid_argument "Queries.threshold_for_count: count out of range")
    (fun () -> ignore (Queries.threshold_for_count distances ~count:6))

let test_epsilon_calibration_hits_target () =
  let batch = Stocklike.batch ~seed:11 ~count:100 ~n:64 in
  let normals = Array.map Normal_form.normalise batch in
  let query = normals.(0) in
  List.iter
    (fun target ->
      let eps = Queries.epsilon_for_answer_size ~normals ~query ~target in
      let answers =
        Array.to_list normals
        |> List.filter (fun s -> Distance.euclidean s query <= eps)
      in
      Alcotest.(check bool)
        (Printf.sprintf "target %d answers (got %d)" target
           (List.length answers))
        true
        (List.length answers >= target))
    [ 1; 10; 50; 100 ]

let test_perturb_bounded () =
  let state = Random.State.make [| 5 |] in
  let s = Array.make 32 10. in
  let q = Queries.perturb state s ~amount:0.5 in
  Array.iter
    (fun v -> Alcotest.(check bool) "within band" true (Float.abs (v -. 10.) <= 0.5))
    q

let () =
  Alcotest.run "simq_workload"
    [
      ( "stocklike",
        [
          Alcotest.test_case "shape" `Quick test_stocklike_shape;
          Alcotest.test_case "reproducible" `Quick test_stocklike_reproducible;
          Alcotest.test_case "paper market scale" `Quick
            test_stocklike_paper_market_scale;
          Alcotest.test_case "series differ" `Quick test_stocklike_series_differ;
          Alcotest.test_case "correlated pairs" `Quick test_correlated_pair;
          Alcotest.test_case "validation" `Quick test_correlated_pair_validation;
        ] );
      ( "queries",
        [
          Alcotest.test_case "threshold for count" `Quick test_threshold_for_count;
          Alcotest.test_case "epsilon calibration" `Quick
            test_epsilon_calibration_hits_target;
          Alcotest.test_case "perturb bounded" `Quick test_perturb_bounded;
        ] );
    ]
