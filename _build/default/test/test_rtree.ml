open Simq_geometry
open Simq_rtree

let random_points ~seed ~count ~dims ~range =
  let state = Random.State.make [| seed |] in
  Array.init count (fun idx ->
      (Array.init dims (fun _ -> Random.State.float state range), idx))

let build_by_insertion ?(max_fill = 8) ~dims points =
  let t = Rstar.create ~max_fill ~dims () in
  Array.iter (fun (p, v) -> Rstar.insert t p v) points;
  t

let assert_valid t =
  match Check.violations t with
  | [] -> ()
  | vs ->
    Alcotest.failf "invariant violations: %a"
      (Format.pp_print_list ~pp_sep:Format.pp_print_newline Check.pp_violation)
      vs

let sort_results rs = List.sort compare rs

let brute_force_rect points rect =
  Array.to_list points
  |> List.filter (fun (p, _) -> Rect.contains_point rect p)
  |> sort_results

(* --- heap -------------------------------------------------------------- *)

let test_heap_orders () =
  let h = Simq_pqueue.Heap.create () in
  let input = [ 5.; 1.; 4.; 1.; 3.; 9.; 2.; 6. ] in
  List.iteri (fun idx k -> Simq_pqueue.Heap.push h k idx) input;
  Alcotest.(check int) "size" (List.length input) (Simq_pqueue.Heap.size h);
  Alcotest.(check (option (float 0.))) "peek" (Some 1.) (Simq_pqueue.Heap.peek_min_key h);
  let rec drain acc =
    match Simq_pqueue.Heap.pop_min h with
    | None -> List.rev acc
    | Some (k, _) -> drain (k :: acc)
  in
  let drained = drain [] in
  Alcotest.(check (list (float 0.))) "sorted" (List.sort compare input) drained;
  Alcotest.(check bool) "empty after drain" true (Simq_pqueue.Heap.is_empty h)

let test_heap_random () =
  let state = Random.State.make [| 3 |] in
  let h = Simq_pqueue.Heap.create () in
  let keys = List.init 500 (fun _ -> Random.State.float state 1000.) in
  List.iter (fun k -> Simq_pqueue.Heap.push h k ()) keys;
  let rec drain acc =
    match Simq_pqueue.Heap.pop_min h with
    | None -> List.rev acc
    | Some (k, ()) -> drain (k :: acc)
  in
  Alcotest.(check int) "all elements" 500 (List.length (drain []))

(* --- insertion & search ------------------------------------------------- *)

let test_empty_tree () =
  let t : int Rstar.t = Rstar.create ~dims:2 () in
  Alcotest.(check int) "size" 0 (Rstar.size t);
  Alcotest.(check int) "height" 1 (Rstar.height t);
  Alcotest.(check (list (pair (array (float 0.)) int))) "search" []
    (Rstar.search_rect t (Rect.create ~lo:[| 0.; 0. |] ~hi:[| 1.; 1. |]));
  assert_valid t

let test_single_point () =
  let t = Rstar.create ~dims:2 () in
  Rstar.insert t [| 1.; 2. |] "a";
  Alcotest.(check int) "size" 1 (Rstar.size t);
  let hits = Rstar.search_rect t (Rect.create ~lo:[| 0.; 0. |] ~hi:[| 3.; 3. |]) in
  Alcotest.(check int) "hit" 1 (List.length hits);
  assert_valid t

let test_insert_many_and_search () =
  let points = random_points ~seed:11 ~count:500 ~dims:3 ~range:100. in
  let t = build_by_insertion ~dims:3 points in
  Alcotest.(check int) "size" 500 (Rstar.size t);
  assert_valid t;
  let state = Random.State.make [| 12 |] in
  for _ = 1 to 25 do
    let lo = Array.init 3 (fun _ -> Random.State.float state 100.) in
    let hi = Array.map (fun v -> v +. Random.State.float state 30.) lo in
    let rect = Rect.create ~lo ~hi in
    let expected = brute_force_rect points rect in
    let actual = sort_results (Rstar.search_rect t rect) in
    Alcotest.(check int)
      "same number of hits"
      (List.length expected) (List.length actual);
    Alcotest.(check bool) "same hits" true (expected = actual)
  done

let test_duplicate_points () =
  let t = Rstar.create ~max_fill:4 ~dims:2 () in
  for i = 1 to 20 do
    Rstar.insert t [| 1.; 1. |] i
  done;
  Alcotest.(check int) "all stored" 20 (Rstar.size t);
  assert_valid t;
  let hits = Rstar.search_rect t (Rect.create ~lo:[| 1.; 1. |] ~hi:[| 1.; 1. |]) in
  Alcotest.(check int) "all found" 20 (List.length hits)

let test_node_accesses_bounded () =
  let points = random_points ~seed:21 ~count:2000 ~dims:2 ~range:1000. in
  let t = build_by_insertion ~max_fill:16 ~dims:2 points in
  Rstar.reset_stats t;
  let rect = Rect.create ~lo:[| 0.; 0. |] ~hi:[| 50.; 50. |] in
  ignore (Rstar.search_rect t rect);
  let accesses = Rstar.search_rect t rect |> fun _ -> Rstar.node_accesses t in
  (* A selective query must touch far fewer nodes than a full scan of
     ~2000/16 leaves plus internals. *)
  Alcotest.(check bool)
    (Printf.sprintf "selective query touches few nodes (%d)" accesses)
    true
    (accesses < 80)

(* --- deletion ----------------------------------------------------------- *)

let test_delete_basic () =
  let t = Rstar.create ~max_fill:4 ~dims:2 () in
  Rstar.insert t [| 1.; 1. |] "a";
  Rstar.insert t [| 2.; 2. |] "b";
  Alcotest.(check bool) "deletes" true
    (Rstar.delete t ~point:[| 1.; 1. |] ~where:(String.equal "a"));
  Alcotest.(check bool) "already gone" false
    (Rstar.delete t ~point:[| 1.; 1. |] ~where:(String.equal "a"));
  Alcotest.(check int) "size" 1 (Rstar.size t);
  assert_valid t

let test_delete_random_workload () =
  let points = random_points ~seed:31 ~count:400 ~dims:2 ~range:100. in
  let t = build_by_insertion ~max_fill:6 ~dims:2 points in
  (* Delete even ids, keep odd. *)
  Array.iter
    (fun (p, v) ->
      if v mod 2 = 0 then
        Alcotest.(check bool) "deleted" true
          (Rstar.delete t ~point:p ~where:(Int.equal v)))
    points;
  Alcotest.(check int) "half remain" 200 (Rstar.size t);
  assert_valid t;
  let rect = Rect.create ~lo:[| 0.; 0. |] ~hi:[| 100.; 100. |] in
  let survivors = Rstar.search_rect t rect in
  Alcotest.(check bool) "only odd ids" true
    (List.for_all (fun (_, v) -> v mod 2 = 1) survivors);
  Alcotest.(check int) "200 found" 200 (List.length survivors)

let test_delete_to_empty_and_reuse () =
  let points = random_points ~seed:41 ~count:60 ~dims:2 ~range:10. in
  let t = build_by_insertion ~max_fill:4 ~dims:2 points in
  Array.iter
    (fun (p, v) -> ignore (Rstar.delete t ~point:p ~where:(Int.equal v)))
    points;
  Alcotest.(check int) "empty" 0 (Rstar.size t);
  Rstar.insert t [| 5.; 5. |] 999;
  Alcotest.(check int) "usable again" 1 (Rstar.size t);
  assert_valid t

(* --- bulk loading ------------------------------------------------------- *)

let test_bulk_load_matches_insertion () =
  let points = random_points ~seed:51 ~count:1000 ~dims:2 ~range:500. in
  let bulk = Bulk.load ~max_fill:16 ~dims:2 points in
  Alcotest.(check int) "size" 1000 (Rstar.size bulk);
  assert_valid bulk;
  let rect = Rect.create ~lo:[| 100.; 100. |] ~hi:[| 300.; 280. |] in
  let expected = brute_force_rect points rect in
  Alcotest.(check bool) "query equivalence" true
    (expected = sort_results (Rstar.search_rect bulk rect))

let test_bulk_load_empty_and_tiny () =
  let empty = Bulk.load ~dims:2 [||] in
  Alcotest.(check int) "empty" 0 (Rstar.size empty);
  let tiny = Bulk.load ~dims:2 [| ([| 1.; 1. |], "x") |] in
  Alcotest.(check int) "one" 1 (Rstar.size tiny);
  assert_valid tiny

let test_bulk_load_supports_insert_after () =
  let points = random_points ~seed:61 ~count:300 ~dims:2 ~range:100. in
  let t = Bulk.load ~max_fill:8 ~dims:2 points in
  Rstar.insert t [| 1000.; 1000. |] 9999;
  Alcotest.(check int) "size" 301 (Rstar.size t);
  assert_valid t;
  let hits =
    Rstar.search_rect t (Rect.create ~lo:[| 999.; 999. |] ~hi:[| 1001.; 1001. |])
  in
  Alcotest.(check int) "new point findable" 1 (List.length hits)

(* --- nearest neighbour --------------------------------------------------- *)

let brute_force_nn points query k =
  Array.to_list points
  |> List.map (fun (p, v) -> (Point.distance query p, p, v))
  |> List.sort (fun (d1, _, _) (d2, _, _) -> Float.compare d1 d2)
  |> List.filteri (fun i _ -> i < k)
  |> List.map (fun (d, p, v) -> (p, v, d))

let test_nn_matches_brute_force () =
  let points = random_points ~seed:71 ~count:800 ~dims:2 ~range:100. in
  let t = build_by_insertion ~max_fill:8 ~dims:2 points in
  let state = Random.State.make [| 72 |] in
  for _ = 1 to 20 do
    let query = Array.init 2 (fun _ -> Random.State.float state 100.) in
    let k = 1 + Random.State.int state 10 in
    let expected = brute_force_nn points query k in
    let actual = Nn.nearest t ~query ~k in
    let dists l = List.map (fun (_, _, d) -> d) l in
    Alcotest.(check (list (float 1e-9))) "distances" (dists expected) (dists actual)
  done

let test_nn_with_transform () =
  (* NN under a transformation equals brute-force NN over transformed
     points (Algorithm 2 for nearest neighbours). *)
  let points = random_points ~seed:81 ~count:400 ~dims:2 ~range:100. in
  let t = build_by_insertion ~max_fill:8 ~dims:2 points in
  let tr = Linear_transform.create ~a:[| -2.; 0.5 |] ~b:[| 10.; -3. |] in
  let query = [| 30.; 40. |] in
  let expected =
    Array.to_list points
    |> List.map (fun (p, v) ->
           (Point.distance query (Linear_transform.apply tr p), p, v))
    |> List.sort (fun (d1, _, _) (d2, _, _) -> Float.compare d1 d2)
    |> List.filteri (fun i _ -> i < 5)
    |> List.map (fun (d, _, v) -> (v, d))
  in
  let actual =
    Nn.nearest ~transform:tr t ~query ~k:5
    |> List.map (fun (_, v, d) -> (v, d))
  in
  List.iter2
    (fun (v1, d1) (v2, d2) ->
      Alcotest.(check int) "same id" v1 v2;
      Alcotest.(check (float 1e-9)) "same distance" d1 d2)
    expected actual

let test_nn_empty_tree () =
  let t : int Rstar.t = Rstar.create ~dims:2 () in
  Alcotest.(check int) "no neighbours" 0
    (List.length (Nn.nearest t ~query:[| 0.; 0. |] ~k:3));
  Alcotest.check_raises "k must be positive"
    (Invalid_argument "Nn.nearest_custom: k must be positive") (fun () ->
      ignore (Nn.nearest t ~query:[| 0.; 0. |] ~k:0))

let test_nn_k_larger_than_tree () =
  let points = random_points ~seed:91 ~count:5 ~dims:2 ~range:10. in
  let t = build_by_insertion ~dims:2 points in
  Alcotest.(check int) "returns all" 5
    (List.length (Nn.nearest t ~query:[| 0.; 0. |] ~k:50))

(* --- join ---------------------------------------------------------------- *)

let test_join_within_epsilon () =
  let left = random_points ~seed:101 ~count:200 ~dims:2 ~range:50. in
  let right = random_points ~seed:102 ~count:200 ~dims:2 ~range:50. in
  let t1 = build_by_insertion ~dims:2 left in
  let t2 = build_by_insertion ~dims:2 right in
  let epsilon = 2.5 in
  let expected = ref 0 in
  Array.iter
    (fun (p1, _) ->
      Array.iter
        (fun (p2, _) -> if Point.distance p1 p2 <= epsilon then incr expected)
        right)
    left;
  let pairs = Join.within_epsilon t1 t2 ~epsilon in
  Alcotest.(check int) "pair count" !expected (List.length pairs)

let test_join_with_transform () =
  (* Joining x with T(y) where T is a translation by (5,0): pairs are
     points horizontally 5 apart. *)
  let mk i = ([| float_of_int i; 0. |], i) in
  let left = Array.init 10 mk in
  let right = Array.init 10 mk in
  let t1 = build_by_insertion ~dims:2 left in
  let t2 = build_by_insertion ~dims:2 right in
  let tr = Linear_transform.translation [| 5.; 0. |] in
  let pairs = Join.within_epsilon ~transform_right:(Some tr |> Option.get) t1 t2 ~epsilon:0.1 in
  Alcotest.(check int) "5 pairs" 5 (List.length pairs);
  List.iter
    (fun ((_, v1), (_, v2)) -> Alcotest.(check int) "offset 5" (v2 + 5) v1)
    pairs

let test_join_empty_side () =
  let left = random_points ~seed:111 ~count:10 ~dims:2 ~range:10. in
  let t1 = build_by_insertion ~dims:2 left in
  let t2 : int Rstar.t = Rstar.create ~dims:2 () in
  Alcotest.(check int) "no pairs" 0
    (List.length (Join.within_epsilon t1 t2 ~epsilon:100.))

(* --- region search with circular dimension -------------------------------- *)

let test_region_search_circular () =
  (* Points on a circle parameterised by angle; a circular region across
     the seam must find the points on both sides. *)
  let t = Rstar.create ~max_fill:4 ~dims:2 () in
  let angles = [ -3.1; -3.0; -1.5; 0.0; 1.5; 3.0; 3.1 ] in
  List.iteri (fun idx a -> Rstar.insert t [| 1.0; a |] idx) angles;
  let region =
    [|
      Region.linear ~lo:0.5 ~hi:1.5;
      Region.circular ~lo:(Float.pi -. 0.3) ~hi:(Float.pi +. 0.3);
    |]
  in
  let hits = Rstar.search_region t region in
  (* Angles within 0.3 of pi (mod 2pi): 3.0, 3.1, -3.1, -3.0. *)
  Alcotest.(check int) "seam-spanning hits" 4 (List.length hits)

(* --- rectangle data entries -------------------------------------------------- *)

let test_rect_data_entries () =
  (* Insert rectangles directly; range search returns entries whose
     rectangles intersect the query window. *)
  let t = Rstar.create ~max_fill:4 ~dims:2 () in
  Rstar.insert_rect t (Rect.create ~lo:[| 0.; 0. |] ~hi:[| 2.; 2. |]) "a";
  Rstar.insert_rect t (Rect.create ~lo:[| 5.; 5. |] ~hi:[| 7.; 9. |]) "b";
  Rstar.insert_rect t (Rect.create ~lo:[| 1.; 1. |] ~hi:[| 6.; 6. |]) "c";
  Alcotest.(check int) "size" 3 (Rstar.size t);
  assert_valid t;
  let hits rect =
    Rstar.search_rect t rect |> List.map snd |> List.sort compare
  in
  Alcotest.(check (list string)) "window over the middle" [ "a"; "c" ]
    (hits (Rect.create ~lo:[| 1.5; 1.5 |] ~hi:[| 2.5; 2.5 |]));
  Alcotest.(check (list string)) "window over everything" [ "a"; "b"; "c" ]
    (hits (Rect.create ~lo:[| 0.; 0. |] ~hi:[| 10.; 10. |]));
  Alcotest.(check (list string)) "disjoint window" []
    (hits (Rect.create ~lo:[| 20.; 20. |] ~hi:[| 21.; 21. |]))

let test_rect_data_bulk_and_fold () =
  let state = Random.State.make [| 131 |] in
  let rects =
    Array.init 200 (fun i ->
        let x = Random.State.float state 100. in
        let y = Random.State.float state 100. in
        ( Rect.create ~lo:[| x; y |]
            ~hi:[| x +. Random.State.float state 5.; y +. Random.State.float state 5. |],
          i ))
  in
  let t = Bulk.load_rects ~max_fill:8 ~dims:2 rects in
  Alcotest.(check int) "size" 200 (Rstar.size t);
  assert_valid t;
  let window = Rect.create ~lo:[| 20.; 20. |] ~hi:[| 50.; 60. |] in
  let expected =
    Array.to_list rects
    |> List.filter_map (fun (r, v) -> if Rect.intersects window r then Some v else None)
    |> List.sort compare
  in
  let actual =
    Rstar.fold_region t
      ~overlaps:(fun r -> Rect.intersects window r)
      ~matches:(fun r _ -> Rect.intersects window r)
      ~init:[]
      ~f:(fun acc _ v -> v :: acc)
    |> List.sort compare
  in
  Alcotest.(check (list int)) "intersection semantics" expected actual

(* --- Guttman variant ------------------------------------------------------ *)

let test_guttman_search_equivalence () =
  let points = random_points ~seed:121 ~count:600 ~dims:2 ~range:200. in
  let t = Rstar.create ~variant:Rstar.Guttman_variant ~max_fill:8 ~dims:2 () in
  Array.iter (fun (p, v) -> Rstar.insert t p v) points;
  Alcotest.(check int) "size" 600 (Rstar.size t);
  assert_valid t;
  let state = Random.State.make [| 122 |] in
  for _ = 1 to 15 do
    let lo = Array.init 2 (fun _ -> Random.State.float state 200.) in
    let hi = Array.map (fun v -> v +. Random.State.float state 50.) lo in
    let rect = Rect.create ~lo ~hi in
    Alcotest.(check bool) "brute force equivalence" true
      (brute_force_rect points rect = sort_results (Rstar.search_rect t rect))
  done

let test_guttman_delete () =
  let points = random_points ~seed:123 ~count:200 ~dims:2 ~range:50. in
  let t = Rstar.create ~variant:Rstar.Guttman_variant ~max_fill:6 ~dims:2 () in
  Array.iter (fun (p, v) -> Rstar.insert t p v) points;
  Array.iter
    (fun (p, v) ->
      if v mod 3 = 0 then
        Alcotest.(check bool) "deleted" true
          (Rstar.delete t ~point:p ~where:(Int.equal v)))
    points;
  assert_valid t;
  Alcotest.(check int) "survivors" 133 (Rstar.size t)

let test_variants_same_answers () =
  (* Different trees, identical query results. *)
  let points = random_points ~seed:124 ~count:400 ~dims:3 ~range:100. in
  let build variant =
    let t = Rstar.create ~variant ~max_fill:8 ~dims:3 () in
    Array.iter (fun (p, v) -> Rstar.insert t p v) points;
    t
  in
  let rstar = build Rstar.Rstar_variant in
  let guttman = build Rstar.Guttman_variant in
  let rect = Rect.create ~lo:[| 10.; 10.; 10. |] ~hi:[| 60.; 70.; 90. |] in
  Alcotest.(check bool) "same range results" true
    (sort_results (Rstar.search_rect rstar rect)
    = sort_results (Rstar.search_rect guttman rect));
  let q = [| 50.; 50.; 50. |] in
  let dists t = Nn.nearest t ~query:q ~k:7 |> List.map (fun (_, _, d) -> d) in
  Alcotest.(check (list (float 1e-9))) "same nn distances" (dists rstar)
    (dists guttman)

(* --- property-based ------------------------------------------------------ *)

let arb_workload =
  let gen =
    QCheck.Gen.(
      let* n = int_range 1 300 in
      let* seed = int_range 0 10_000 in
      let* max_fill = int_range 4 16 in
      return (n, seed, max_fill))
  in
  QCheck.make
    ~print:(fun (n, s, m) -> Printf.sprintf "n=%d seed=%d max_fill=%d" n s m)
    gen

let prop_insert_search_equivalence =
  QCheck.Test.make ~name:"range query = brute force after inserts" ~count:40
    arb_workload (fun (n, seed, max_fill) ->
      let points = random_points ~seed ~count:n ~dims:2 ~range:100. in
      let t = build_by_insertion ~max_fill ~dims:2 points in
      let rect = Rect.create ~lo:[| 20.; 20. |] ~hi:[| 70.; 60. |] in
      Check.is_valid t
      && brute_force_rect points rect = sort_results (Rstar.search_rect t rect))

let prop_guttman_invariants =
  QCheck.Test.make ~name:"guttman variant keeps invariants" ~count:25
    arb_workload (fun (n, seed, max_fill) ->
      let points = random_points ~seed ~count:n ~dims:2 ~range:100. in
      let t =
        Rstar.create ~variant:Rstar.Guttman_variant ~max_fill ~dims:2 ()
      in
      Array.iter (fun (p, v) -> Rstar.insert t p v) points;
      Check.is_valid t)

let prop_delete_keeps_invariants =
  QCheck.Test.make ~name:"invariants survive random deletions" ~count:30
    arb_workload (fun (n, seed, max_fill) ->
      let points = random_points ~seed ~count:n ~dims:2 ~range:100. in
      let t = build_by_insertion ~max_fill ~dims:2 points in
      let state = Random.State.make [| seed + 1 |] in
      Array.iter
        (fun (p, v) ->
          if Random.State.bool state then
            ignore (Rstar.delete t ~point:p ~where:(Int.equal v)))
        points;
      Check.is_valid t)

let prop_bulk_load_equivalence =
  QCheck.Test.make ~name:"bulk load answers like brute force" ~count:30
    arb_workload (fun (n, seed, max_fill) ->
      let points = random_points ~seed ~count:n ~dims:2 ~range:100. in
      let t = Bulk.load ~max_fill ~dims:2 points in
      let rect = Rect.create ~lo:[| 10.; 30. |] ~hi:[| 80.; 90. |] in
      Check.is_valid t
      && brute_force_rect points rect = sort_results (Rstar.search_rect t rect))

let prop_nn_first_equals_min =
  QCheck.Test.make ~name:"1-NN returns the closest point" ~count:40
    arb_workload (fun (n, seed, max_fill) ->
      let points = random_points ~seed ~count:n ~dims:2 ~range:100. in
      let t = build_by_insertion ~max_fill ~dims:2 points in
      let query = [| 50.; 50. |] in
      match Nn.nearest t ~query ~k:1 with
      | [ (_, _, d) ] ->
        let best =
          Array.fold_left
            (fun acc (p, _) -> Float.min acc (Point.distance query p))
            Float.infinity points
        in
        Float.abs (d -. best) <= 1e-9
      | _ -> false)

let properties =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_insert_search_equivalence;
      prop_guttman_invariants;
      prop_delete_keeps_invariants;
      prop_bulk_load_equivalence;
      prop_nn_first_equals_min;
    ]

let () =
  Alcotest.run "simq_rtree"
    [
      ( "heap",
        [
          Alcotest.test_case "orders" `Quick test_heap_orders;
          Alcotest.test_case "random" `Quick test_heap_random;
        ] );
      ( "insert/search",
        [
          Alcotest.test_case "empty tree" `Quick test_empty_tree;
          Alcotest.test_case "single point" `Quick test_single_point;
          Alcotest.test_case "many points, brute-force equivalence" `Quick
            test_insert_many_and_search;
          Alcotest.test_case "duplicate points" `Quick test_duplicate_points;
          Alcotest.test_case "node accesses bounded" `Quick
            test_node_accesses_bounded;
        ] );
      ( "delete",
        [
          Alcotest.test_case "basic" `Quick test_delete_basic;
          Alcotest.test_case "random workload" `Quick test_delete_random_workload;
          Alcotest.test_case "delete to empty, reuse" `Quick
            test_delete_to_empty_and_reuse;
        ] );
      ( "bulk",
        [
          Alcotest.test_case "matches insertion" `Quick
            test_bulk_load_matches_insertion;
          Alcotest.test_case "empty and tiny" `Quick test_bulk_load_empty_and_tiny;
          Alcotest.test_case "insert after bulk" `Quick
            test_bulk_load_supports_insert_after;
        ] );
      ( "nearest neighbour",
        [
          Alcotest.test_case "matches brute force" `Quick
            test_nn_matches_brute_force;
          Alcotest.test_case "with transformation" `Quick test_nn_with_transform;
          Alcotest.test_case "empty tree" `Quick test_nn_empty_tree;
          Alcotest.test_case "k larger than tree" `Quick test_nn_k_larger_than_tree;
        ] );
      ( "join",
        [
          Alcotest.test_case "within epsilon" `Quick test_join_within_epsilon;
          Alcotest.test_case "with transformation" `Quick test_join_with_transform;
          Alcotest.test_case "empty side" `Quick test_join_empty_side;
        ] );
      ( "rect data",
        [
          Alcotest.test_case "insert_rect and search" `Quick
            test_rect_data_entries;
          Alcotest.test_case "bulk load_rects and fold" `Quick
            test_rect_data_bulk_and_fold;
        ] );
      ( "guttman variant",
        [
          Alcotest.test_case "search equivalence" `Quick
            test_guttman_search_equivalence;
          Alcotest.test_case "delete" `Quick test_guttman_delete;
          Alcotest.test_case "variants agree" `Quick test_variants_same_answers;
        ] );
      ( "region",
        [
          Alcotest.test_case "circular dimension" `Quick
            test_region_search_circular;
        ] );
      ("properties", properties);
    ]
