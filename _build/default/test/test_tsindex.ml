open Simq_tsindex
module Series = Simq_series.Series
module Generator = Simq_series.Generator
module Coords = Simq_geometry.Coords

let dataset_of ~seed ~count ~n =
  Dataset.of_series ~name:"test"
    (Generator.random_walks ~seed ~count ~n)

let ids_of answers = List.map (fun ((e : Dataset.entry), _) -> e.Dataset.id) answers

let check_same_answers msg expected actual =
  Alcotest.(check (list int)) (msg ^ ": ids") (ids_of expected) (ids_of actual);
  List.iter2
    (fun (_, d1) (_, d2) ->
      Alcotest.(check (float 1e-6)) (msg ^ ": distance") d1 d2)
    expected actual

let query_for dataset spec seed =
  (* A query built by perturbing one of the data series keeps answer sets
     non-trivial. *)
  let entries = Dataset.entries dataset in
  let base = entries.(seed mod Array.length entries) in
  let state = Random.State.make [| seed |] in
  let perturbed =
    Array.map
      (fun v -> v +. Random.State.float state 2. -. 1.)
      base.Dataset.series
  in
  let n = Dataset.series_length dataset in
  match spec with
  | Spec.Warp m -> Simq_series.Warp.expand m perturbed
  | _ ->
    assert (Spec.output_length spec ~n = n);
    perturbed

let all_specs =
  [
    Spec.Identity;
    Spec.Moving_average 3;
    Spec.Moving_average 8;
    Spec.Weighted_ma (Simq_dsp.Window.ascending 5);
    Spec.Reverse;
    Spec.Warp 2;
  ]

(* --- Spec ------------------------------------------------------------------ *)

let test_spec_stretch_predicts_spectrum () =
  (* For every spec, multiplying the spectrum by the stretch vector must
     equal the DFT of the time-domain transformation (prefix n). *)
  let s = Simq_series.Normal_form.normalise
      (Generator.random_walk (Random.State.make [| 2 |]) 32) in
  let spectrum = Simq_dsp.Fft.fft_real s in
  List.iter
    (fun spec ->
      let n = 32 in
      let stretch = Spec.stretch spec ~n in
      let predicted = Simq_dsp.Cpx.mul_arrays stretch spectrum in
      let actual = Simq_dsp.Fft.fft_real (Spec.apply_series spec s) in
      let actual_prefix = Array.sub actual 0 n in
      Alcotest.(check bool)
        (Spec.name spec ^ " stretch = DFT of time-domain op")
        true
        (Simq_dsp.Cpx.close_arrays ~eps:1e-6 predicted actual_prefix))
    all_specs

let test_spec_output_length () =
  Alcotest.(check int) "identity" 10 (Spec.output_length Spec.Identity ~n:10);
  Alcotest.(check int) "warp" 30 (Spec.output_length (Spec.Warp 3) ~n:10)

(* --- Dataset ----------------------------------------------------------------- *)

let test_dataset_preparation () =
  let d = dataset_of ~seed:3 ~count:10 ~n:64 in
  Alcotest.(check int) "cardinality" 10 (Dataset.cardinality d);
  Alcotest.(check int) "length" 64 (Dataset.series_length d);
  Array.iter
    (fun (e : Dataset.entry) ->
      Alcotest.(check bool) "normal form" true
        (Simq_series.Normal_form.is_normal e.Dataset.normal);
      Alcotest.(check (float 1e-9)) "coefficient 0 is zero" 0.
        (Simq_dsp.Cpx.abs e.Dataset.spectrum.(0)))
    (Dataset.entries d)

let test_dataset_rejects_mixed_lengths () =
  let r = Simq_storage.Relation.create ~name:"bad" () in
  ignore (Simq_storage.Relation.insert r ~name:"a" (Array.make 8 1.));
  ignore (Simq_storage.Relation.insert r ~name:"b" (Array.make 16 1.));
  Alcotest.check_raises "unequal lengths"
    (Invalid_argument "Dataset.of_relation: series of unequal lengths")
    (fun () -> ignore (Dataset.of_relation r))

(* --- Kindex range: exactness under every spec and representation ------------- *)

let test_range_matches_reference () =
  List.iter
    (fun representation ->
      let d = dataset_of ~seed:7 ~count:120 ~n:64 in
      let config = { Feature.k = 2; representation } in
      let idx = Kindex.build ~config ~max_fill:8 d in
      List.iter
        (fun spec ->
          (* Complex stretches are only safe in S_pol (Theorem 3). *)
          let skip =
            representation = Coords.Rectangular
            && (match spec with
               | Spec.Moving_average _ | Spec.Weighted_ma _ | Spec.Warp _ -> true
               | Spec.Identity | Spec.Reverse -> false)
          in
          if not skip then
            List.iter
              (fun (qseed, epsilon) ->
                let query = query_for d spec qseed in
                let expected = Seqscan.reference ~spec d ~query ~epsilon in
                let actual = Kindex.range ~spec idx ~query ~epsilon in
                let label =
                  Printf.sprintf "%s %s eps=%g"
                    (match representation with
                    | Coords.Polar -> "polar"
                    | Coords.Rectangular -> "rect")
                    (Spec.name spec) epsilon
                in
                check_same_answers label expected actual.Kindex.answers;
                Alcotest.(check bool) (label ^ ": superset")
                  true
                  (actual.Kindex.candidates
                  >= List.length actual.Kindex.answers))
              [ (1, 0.5); (2, 2.); (3, 6.); (4, 12.) ])
        all_specs)
    [ Coords.Polar; Coords.Rectangular ]

let test_range_rejects_bad_query_length () =
  let d = dataset_of ~seed:9 ~count:10 ~n:32 in
  let idx = Kindex.build d in
  Alcotest.check_raises "wrong length"
    (Invalid_argument "Kindex: query length 16, expected 32") (fun () ->
      ignore (Kindex.range idx ~query:(Array.make 16 1.) ~epsilon:1.));
  Alcotest.check_raises "warp needs long query"
    (Invalid_argument "Kindex: query length 32, expected 64") (fun () ->
      ignore
        (Kindex.range ~spec:(Spec.Warp 2) idx ~query:(Array.make 32 1.)
           ~epsilon:1.))

let test_range_prunes () =
  (* A selective query must not postprocess the whole data set. *)
  let d = dataset_of ~seed:11 ~count:800 ~n:64 in
  let idx = Kindex.build ~max_fill:16 d in
  let query = query_for d Spec.Identity 1 in
  let r = Kindex.range idx ~query ~epsilon:1. in
  Alcotest.(check bool)
    (Printf.sprintf "candidates %d << 800" r.Kindex.candidates)
    true
    (r.Kindex.candidates < 200)

let test_rtree_of_index_is_valid () =
  let d = dataset_of ~seed:13 ~count:200 ~n:32 in
  let idx = Kindex.build ~max_fill:8 d in
  Alcotest.(check bool) "invariants" true
    (Simq_rtree.Check.is_valid (Kindex.tree idx))

let test_range_with_k3_config () =
  (* A third coefficient changes the index layout, not the answers. *)
  let d = dataset_of ~seed:43 ~count:100 ~n:64 in
  let config = { Feature.k = 3; representation = Coords.Polar } in
  let idx = Kindex.build ~config ~max_fill:8 d in
  List.iter
    (fun spec ->
      let query = query_for d spec 6 in
      let expected = Seqscan.reference ~spec d ~query ~epsilon:5. in
      let actual = Kindex.range ~spec idx ~query ~epsilon:5. in
      check_same_answers (Spec.name spec ^ " k=3") expected actual.Kindex.answers)
    [ Spec.Identity; Spec.Moving_average 8; Spec.Reverse ]

(* --- Kindex nearest ----------------------------------------------------------- *)

let brute_nearest ~spec d ~query ~k =
  let q = Dataset.prepare_query query in
  Array.to_list (Dataset.entries d)
  |> List.map (fun (e : Dataset.entry) ->
         ( e,
           Simq_series.Distance.euclidean
             (Spec.apply_series spec e.Dataset.normal)
             q.Dataset.normal ))
  |> List.sort (fun (_, d1) (_, d2) -> Float.compare d1 d2)
  |> List.filteri (fun i _ -> i < k)

let test_nearest_matches_brute_force () =
  let d = dataset_of ~seed:17 ~count:150 ~n:64 in
  List.iter
    (fun representation ->
      let config = { Feature.k = 2; representation } in
      let idx = Kindex.build ~config ~max_fill:8 d in
      List.iter
        (fun spec ->
          let skip =
            representation = Coords.Rectangular
            && (match spec with
               | Spec.Moving_average _ | Spec.Weighted_ma _ | Spec.Warp _ -> true
               | Spec.Identity | Spec.Reverse -> false)
          in
          if not skip then begin
            let query = query_for d spec 23 in
            let expected = brute_nearest ~spec d ~query ~k:5 in
            let actual = Kindex.nearest ~spec idx ~query ~k:5 in
            List.iter2
              (fun (_, d1) (_, d2) ->
                Alcotest.(check (float 1e-6))
                  (Spec.name spec ^ " nn distance")
                  d1 d2)
              expected actual
          end)
        all_specs)
    [ Coords.Polar; Coords.Rectangular ]

(* --- Seqscan ------------------------------------------------------------------ *)

let test_seqscan_variants_agree () =
  let d = dataset_of ~seed:19 ~count:100 ~n:64 in
  List.iter
    (fun spec ->
      let query = query_for d spec 5 in
      let epsilon = 4. in
      let reference = Seqscan.reference ~spec d ~query ~epsilon in
      let full = Seqscan.range_full ~spec d ~query ~epsilon in
      let early = Seqscan.range_early_abandon ~spec d ~query ~epsilon in
      check_same_answers (Spec.name spec ^ " full") reference full.Seqscan.answers;
      check_same_answers (Spec.name spec ^ " early") reference
        early.Seqscan.answers;
      Alcotest.(check bool) "early abandon touches fewer coefficients" true
        (early.Seqscan.coefficients_touched <= full.Seqscan.coefficients_touched))
    all_specs

let test_seqscan_counts_page_reads () =
  let d = dataset_of ~seed:21 ~count:200 ~n:128 in
  let stats = Simq_storage.Relation.stats (Dataset.relation d) in
  Simq_storage.Io_stats.reset stats;
  let query = query_for d Spec.Identity 3 in
  ignore (Seqscan.range_full d ~query ~epsilon:1.);
  Alcotest.(check bool) "page reads recorded" true
    (Simq_storage.Io_stats.page_reads stats
     + Simq_storage.Io_stats.cache_hits stats
    > 0)

(* --- Join ---------------------------------------------------------------------- *)

let canonical_pairs pairs =
  List.map (fun (a, b) -> (min a b, max a b)) pairs
  |> List.sort_uniq compare

let test_join_methods_agree () =
  let d = dataset_of ~seed:23 ~count:60 ~n:64 in
  let idx = Kindex.build ~max_fill:8 d in
  List.iter
    (fun (spec, epsilon) ->
      let a = Join.scan_full ~spec idx ~epsilon in
      let b = Join.scan_early_abandon ~spec idx ~epsilon in
      let dd = Join.index_transformed ~spec idx ~epsilon in
      let label = Spec.name spec in
      Alcotest.(check (list (pair int int)))
        (label ^ ": a = b")
        (canonical_pairs a.Join.pairs)
        (canonical_pairs b.Join.pairs);
      Alcotest.(check (list (pair int int)))
        (label ^ ": a = d (canonical)")
        (canonical_pairs a.Join.pairs)
        (canonical_pairs dd.Join.pairs);
      (* Method d reports both directions. *)
      Alcotest.(check int)
        (label ^ ": d size doubles")
        (2 * List.length (canonical_pairs dd.Join.pairs))
        (List.length dd.Join.pairs))
    [ (Spec.Identity, 3.); (Spec.Moving_average 8, 1.5); (Spec.Warp 2, 4.) ]

let test_join_untransformed_matches_identity () =
  let d = dataset_of ~seed:29 ~count:50 ~n:64 in
  let idx = Kindex.build ~max_fill:8 d in
  let c = Join.index_untransformed idx ~epsilon:3. in
  let a = Join.scan_full idx ~epsilon:3. in
  Alcotest.(check (list (pair int int))) "c = a (canonical)"
    (canonical_pairs a.Join.pairs)
    (canonical_pairs c.Join.pairs)

let test_join_transformed_finds_more_smoothed_pairs () =
  (* Example-1.1 style: smoothing admits pairs the raw distance refuses. *)
  let d = dataset_of ~seed:31 ~count:80 ~n:64 in
  let idx = Kindex.build ~max_fill:8 d in
  let raw = Join.scan_full idx ~epsilon:2. in
  let smoothed = Join.scan_full ~spec:(Spec.Moving_average 16) idx ~epsilon:2. in
  Alcotest.(check bool)
    (Printf.sprintf "smoothing can only help here (%d vs %d)"
       (List.length smoothed.Join.pairs)
       (List.length raw.Join.pairs))
    true
    (List.length smoothed.Join.pairs >= List.length raw.Join.pairs)

(* --- GK95 constraints & raw queries ----------------------------------------- *)

let test_range_mean_std_constraints () =
  let d = dataset_of ~seed:37 ~count:150 ~n:64 in
  let idx = Kindex.build ~max_fill:8 d in
  let query = query_for d Spec.Identity 4 in
  let epsilon = 8. in
  let unconstrained = Kindex.range idx ~query ~epsilon in
  let decomposition = Simq_series.Normal_form.decompose query in
  let qmean = decomposition.Simq_series.Normal_form.mean in
  let qstd = decomposition.Simq_series.Normal_form.std in
  let mean_window = 5. and std_band = 1.3 in
  let constrained =
    Kindex.range ~mean_window ~std_band idx ~query ~epsilon
  in
  (* The constrained answers are exactly the unconstrained ones whose
     mean/std fall in the windows. *)
  let expected =
    List.filter
      (fun ((e : Dataset.entry), _) ->
        Float.abs (e.Dataset.mean -. qmean) <= mean_window
        && e.Dataset.std >= qstd /. std_band
        && e.Dataset.std <= qstd *. std_band)
      unconstrained.Kindex.answers
  in
  Alcotest.(check (list int)) "filtered ids" (ids_of expected)
    (ids_of constrained.Kindex.answers);
  Alcotest.(check bool) "constraints prune" true
    (List.length constrained.Kindex.answers
    <= List.length unconstrained.Kindex.answers);
  Alcotest.check_raises "negative window"
    (Invalid_argument "Kindex.range: negative mean_window") (fun () ->
      ignore (Kindex.range ~mean_window:(-1.) idx ~query ~epsilon));
  Alcotest.check_raises "bad band"
    (Invalid_argument "Kindex.range: std_band must be >= 1") (fun () ->
      ignore (Kindex.range ~std_band:0.5 idx ~query ~epsilon))

let test_range_unnormalised_query () =
  (* Both-sides-transformed matching: smooth the normalised query and
     search with ~normalise_query:false; the index must agree with a
     direct computation. *)
  let d = dataset_of ~seed:41 ~count:100 ~n:64 in
  let idx = Kindex.build ~max_fill:8 d in
  let spec = Spec.Moving_average 8 in
  let base = query_for d Spec.Identity 9 in
  let query =
    Simq_series.Moving_average.circular (Simq_dsp.Window.uniform 8)
      (Simq_series.Normal_form.normalise base)
  in
  let epsilon = 1.0 in
  let result = Kindex.range ~spec ~normalise_query:false idx ~query ~epsilon in
  let expected =
    Array.to_list (Dataset.entries d)
    |> List.filter_map (fun (e : Dataset.entry) ->
           let dist =
             Simq_series.Distance.euclidean
               (Spec.apply_series spec e.Dataset.normal)
               query
           in
           if dist <= epsilon then Some e.Dataset.id else None)
  in
  Alcotest.(check (list int)) "matches direct computation" expected
    (ids_of result.Kindex.answers)

(* --- Index maintenance --------------------------------------------------------- *)

let test_kindex_insert_visible () =
  let d = dataset_of ~seed:61 ~count:80 ~n:64 in
  let idx = Kindex.build ~max_fill:8 d in
  let extra = Generator.random_walks ~seed:62 ~count:20 ~n:64 in
  Array.iteri
    (fun i s ->
      let entry = Kindex.insert idx ~name:(Printf.sprintf "new-%d" i) s in
      Alcotest.(check int) "dense id" (80 + i) entry.Dataset.id)
    extra;
  Alcotest.(check int) "cardinality" 100 (Dataset.cardinality d);
  Alcotest.(check int) "tree size" 100
    (Simq_rtree.Rstar.size (Kindex.tree idx));
  Alcotest.(check bool) "invariants" true
    (Simq_rtree.Check.is_valid (Kindex.tree idx));
  (* A query around a freshly inserted series finds it. *)
  let query = extra.(5) in
  let r = Kindex.range idx ~query ~epsilon:0.5 in
  Alcotest.(check bool) "new series found" true
    (List.exists (fun ((e : Dataset.entry), _) -> e.Dataset.id = 85)
       r.Kindex.answers);
  (* And results still agree with the scan reference over the grown set. *)
  let reference = Seqscan.reference d ~query ~epsilon:6. in
  let actual = Kindex.range idx ~query ~epsilon:6. in
  Alcotest.(check (list int)) "reference equivalence" (ids_of reference)
    (ids_of actual.Kindex.answers)

let test_kindex_insert_rejects_bad_length () =
  let d = dataset_of ~seed:63 ~count:10 ~n:64 in
  let idx = Kindex.build d in
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Dataset.insert: series length mismatch") (fun () ->
      ignore (Kindex.insert idx ~name:"bad" (Array.make 32 1.)))

let test_kindex_delete () =
  let d = dataset_of ~seed:64 ~count:60 ~n:64 in
  let idx = Kindex.build ~max_fill:8 d in
  let victim = (Dataset.get d 7).Dataset.series in
  let before = Kindex.range idx ~query:victim ~epsilon:0.1 in
  Alcotest.(check bool) "victim present" true
    (List.exists (fun ((e : Dataset.entry), _) -> e.Dataset.id = 7)
       before.Kindex.answers);
  Alcotest.(check bool) "delete succeeds" true (Kindex.delete idx 7);
  Alcotest.(check bool) "second delete fails" false (Kindex.delete idx 7);
  Alcotest.(check bool) "unknown id fails" false (Kindex.delete idx 999);
  let after = Kindex.range idx ~query:victim ~epsilon:0.1 in
  Alcotest.(check bool) "victim gone" false
    (List.exists (fun ((e : Dataset.entry), _) -> e.Dataset.id = 7)
       after.Kindex.answers);
  Alcotest.(check int) "tree shrank" 59 (Simq_rtree.Rstar.size (Kindex.tree idx));
  Alcotest.(check bool) "invariants" true
    (Simq_rtree.Check.is_valid (Kindex.tree idx))

(* --- Subsequence matching ---------------------------------------------------- *)

let brute_force_subseq series ~window ~query ~epsilon =
  let hits = ref [] in
  Array.iteri
    (fun series_id s ->
      for offset = 0 to Series.length s - window do
        let slice = Simq_series.Series.subsequence s ~pos:offset ~len:window in
        let d = Simq_series.Distance.euclidean slice query in
        if d <= epsilon then hits := (series_id, offset, d) :: !hits
      done)
    series;
  List.sort compare !hits

let test_subseq_range_matches_brute_force () =
  let series = Generator.random_walks ~seed:51 ~count:20 ~n:100 in
  let window = 16 in
  let index = Subseq.build ~window series in
  Alcotest.(check int) "windows indexed" (20 * (100 - 16 + 1))
    (Subseq.windows_indexed index);
  let state = Random.State.make [| 52 |] in
  for trial = 1 to 10 do
    let sid = Random.State.int state 20 in
    let off = Random.State.int state (100 - window + 1) in
    let base = Simq_series.Series.subsequence series.(sid) ~pos:off ~len:window in
    let query =
      Array.map (fun v -> v +. Random.State.float state 0.4 -. 0.2) base
    in
    let epsilon = 0.5 +. Random.State.float state 2. in
    let expected = brute_force_subseq series ~window ~query ~epsilon in
    let hits, candidates = Subseq.range index ~query ~epsilon in
    let actual =
      List.map (fun h -> (h.Subseq.series_id, h.Subseq.offset, h.Subseq.distance)) hits
    in
    Alcotest.(check int)
      (Printf.sprintf "trial %d: hit count" trial)
      (List.length expected) (List.length actual);
    List.iter2
      (fun (es, eo, ed) (s, o, d) ->
        Alcotest.(check int) "series" es s;
        Alcotest.(check int) "offset" eo o;
        Alcotest.(check (float 1e-9)) "distance" ed d)
      expected actual;
    Alcotest.(check bool) "superset" true (candidates >= List.length actual)
  done

let test_subseq_nearest () =
  let series = Generator.random_walks ~seed:53 ~count:10 ~n:64 in
  let window = 8 in
  let index = Subseq.build ~window series in
  (* The nearest window to an exact slice is that slice at distance 0. *)
  let query = Simq_series.Series.subsequence series.(3) ~pos:17 ~len:window in
  (match Subseq.nearest index ~query ~k:1 with
  | [ h ] ->
    Alcotest.(check int) "series" 3 h.Subseq.series_id;
    Alcotest.(check int) "offset" 17 h.Subseq.offset;
    Alcotest.(check (float 1e-9)) "distance" 0. h.Subseq.distance
  | other -> Alcotest.failf "expected 1 hit, got %d" (List.length other));
  (* k-NN distances match a brute-force ranking. *)
  let all = brute_force_subseq series ~window ~query ~epsilon:Float.infinity in
  let expected =
    List.sort (fun (_, _, d1) (_, _, d2) -> Float.compare d1 d2) all
    |> List.filteri (fun i _ -> i < 5)
    |> List.map (fun (_, _, d) -> d)
  in
  let actual =
    Subseq.nearest index ~query ~k:5 |> List.map (fun h -> h.Subseq.distance)
  in
  Alcotest.(check (list (float 1e-9))) "knn distances" expected actual

let test_subseq_paper_example_12 () =
  (* Example 1.2: the minimum distance from p to a length-4 subsequence
     of s is over 1.41 without warping. *)
  let s = Simq_series.Fixtures.ex12_s and p = Simq_series.Fixtures.ex12_p in
  let index = Subseq.build ~k:2 ~window:4 [| s |] in
  let hits = Subseq.nearest index ~query:p ~k:1 in
  match hits with
  | [ h ] ->
    Alcotest.(check bool)
      (Printf.sprintf "min distance %.3f > 1.41" h.Subseq.distance)
      true
      (h.Subseq.distance >= 1.41)
  | _ -> Alcotest.fail "expected one hit"

let test_subseq_trails_match_points () =
  (* The trail layout returns exactly the same answers with far fewer
     index entries. *)
  let series = Generator.random_walks ~seed:55 ~count:15 ~n:96 in
  let window = 16 in
  let points = Subseq.build ~window series in
  let trails = Subseq.build ~trail:8 ~window series in
  Alcotest.(check int) "same windows" (Subseq.windows_indexed points)
    (Subseq.windows_indexed trails);
  Alcotest.(check bool)
    (Printf.sprintf "fewer entries (%d vs %d)" (Subseq.index_entries trails)
       (Subseq.index_entries points))
    true
    (Subseq.index_entries trails * 7 <= Subseq.index_entries points);
  let state = Random.State.make [| 56 |] in
  for _ = 1 to 8 do
    let sid = Random.State.int state 15 in
    let off = Random.State.int state (96 - window + 1) in
    let query =
      Simq_workload.Queries.perturb state
        (Simq_series.Series.subsequence series.(sid) ~pos:off ~len:window)
        ~amount:0.3
    in
    let epsilon = 0.5 +. Random.State.float state 1.5 in
    let from_points, _ = Subseq.range points ~query ~epsilon in
    let from_trails, _ = Subseq.range trails ~query ~epsilon in
    let strip hits =
      List.map (fun h -> (h.Subseq.series_id, h.Subseq.offset)) hits
    in
    Alcotest.(check (list (pair int int))) "same range answers"
      (strip from_points) (strip from_trails);
    let nn_points = Subseq.nearest points ~query ~k:4 in
    let nn_trails = Subseq.nearest trails ~query ~k:4 in
    Alcotest.(check (list (float 1e-9))) "same knn distances"
      (List.map (fun h -> h.Subseq.distance) nn_points)
      (List.map (fun h -> h.Subseq.distance) nn_trails)
  done

let test_subseq_trail_validation () =
  Alcotest.check_raises "trail >= 1"
    (Invalid_argument "Subseq.build: trail must be >= 1") (fun () ->
      ignore (Subseq.build ~trail:0 ~window:4 [| Array.make 10 1. |]))

let test_subseq_validation () =
  let series = [| Array.make 10 1. |] in
  Alcotest.check_raises "window too large"
    (Invalid_argument "Subseq.build: window exceeds a series length")
    (fun () -> ignore (Subseq.build ~window:11 series));
  let index = Subseq.build ~window:4 series in
  Alcotest.check_raises "bad query length"
    (Invalid_argument "Subseq: query length 3, expected 4") (fun () ->
      ignore (Subseq.range index ~query:(Array.make 3 1.) ~epsilon:1.))

(* --- Planner ------------------------------------------------------------------ *)

let test_planner_selectivity_monotone () =
  let d = dataset_of ~seed:71 ~count:200 ~n:64 in
  let stats = Planner.collect d in
  let previous = ref (-1.) in
  List.iter
    (fun epsilon ->
      let s = Planner.selectivity stats ~epsilon in
      Alcotest.(check bool) "within [0,1]" true (s >= 0. && s <= 1.);
      Alcotest.(check bool) "monotone" true (s >= !previous);
      previous := s)
    [ 0.; 1.; 2.; 4.; 8.; 12.; 16.; 100. ];
  Alcotest.(check (float 1e-9)) "negative epsilon" 0.
    (Planner.selectivity stats ~epsilon:(-1.));
  Alcotest.(check (float 1e-6)) "huge epsilon saturates" 1.
    (Planner.selectivity stats ~epsilon:1e6)

let test_planner_estimates_roughly_correct () =
  let d = dataset_of ~seed:72 ~count:300 ~n:64 in
  let stats = Planner.collect ~samples:4000 d in
  (* Compare the estimate against the true count for a median-ish eps. *)
  let entries = Dataset.entries d in
  let query = entries.(0).Dataset.normal in
  List.iter
    (fun epsilon ->
      let truth =
        Array.to_list entries
        |> List.filter (fun (e : Dataset.entry) ->
               Simq_series.Distance.euclidean e.Dataset.normal query <= epsilon)
        |> List.length
      in
      let estimate = Planner.estimate_answers stats ~cardinality:300 ~epsilon in
      (* Pairwise-sample estimates are coarse; require the right order of
         magnitude for mid-range epsilons. *)
      if truth >= 30 then
        Alcotest.(check bool)
          (Printf.sprintf "eps %g: estimate %.0f vs truth %d" epsilon estimate
             truth)
          true
          (estimate >= float_of_int truth /. 4.
          && estimate <= float_of_int truth *. 4.))
    [ 8.; 10.; 12. ]

let test_planner_choice_and_execution () =
  let d = dataset_of ~seed:73 ~count:150 ~n:64 in
  let idx = Kindex.build ~max_fill:8 d in
  let stats = Planner.collect d in
  (* Selective query: index plan; broad query: scan plan. Either way the
     answers match the direct index computation. *)
  let query = query_for d Spec.Identity 2 in
  let tiny = Planner.range idx stats ~query ~epsilon:0.5 in
  Alcotest.(check bool) "tiny eps -> index" true (tiny.Planner.plan = Planner.Use_index);
  let huge = Planner.range idx stats ~query ~epsilon:50. in
  Alcotest.(check bool) "huge eps -> scan" true (huge.Planner.plan = Planner.Use_scan);
  List.iter
    (fun epsilon ->
      let planned = Planner.range idx stats ~query ~epsilon in
      let direct = Kindex.range idx ~query ~epsilon in
      Alcotest.(check (list int)) "same answers"
        (ids_of direct.Kindex.answers)
        (ids_of planned.Planner.answers))
    [ 0.5; 5.; 50. ]

(* --- property-based -------------------------------------------------------------- *)

let arb_setup =
  QCheck.make
    ~print:(fun (seed, eps, qseed) ->
      Printf.sprintf "seed=%d eps=%g qseed=%d" seed eps qseed)
    QCheck.Gen.(
      let* seed = int_range 0 1000 in
      let* eps = float_range 0.1 15. in
      let* qseed = int_range 0 1000 in
      return (seed, eps, qseed))

let prop_no_false_dismissals_identity =
  QCheck.Test.make ~name:"Lemma 1: index answers = reference (identity)"
    ~count:25 arb_setup (fun (seed, epsilon, qseed) ->
      let d = dataset_of ~seed ~count:60 ~n:32 in
      let idx = Kindex.build ~max_fill:8 d in
      let query = query_for d Spec.Identity qseed in
      let expected = Seqscan.reference d ~query ~epsilon in
      let actual = Kindex.range idx ~query ~epsilon in
      ids_of expected = ids_of actual.Kindex.answers)

let prop_no_false_dismissals_mavg =
  QCheck.Test.make ~name:"Lemma 1: index answers = reference (mavg)"
    ~count:25 arb_setup (fun (seed, epsilon, qseed) ->
      let d = dataset_of ~seed ~count:60 ~n:32 in
      let idx = Kindex.build ~max_fill:8 d in
      let spec = Spec.Moving_average (1 + (qseed mod 10)) in
      let query = query_for d spec qseed in
      let expected = Seqscan.reference ~spec d ~query ~epsilon in
      let actual = Kindex.range ~spec idx ~query ~epsilon in
      ids_of expected = ids_of actual.Kindex.answers)

let prop_subseq_exact =
  QCheck.Test.make ~name:"subsequence range = brute force" ~count:15
    arb_setup (fun (seed, epsilon, qseed) ->
      let epsilon = epsilon /. 4. in
      let series = Generator.random_walks ~seed ~count:6 ~n:48 in
      let window = 12 in
      let index = Subseq.build ~window series in
      let state = Random.State.make [| qseed |] in
      let sid = Random.State.int state 6 in
      let off = Random.State.int state (48 - window + 1) in
      let query =
        Simq_workload.Queries.perturb state
          (Series.subsequence series.(sid) ~pos:off ~len:window)
          ~amount:0.5
      in
      let expected =
        brute_force_subseq series ~window ~query ~epsilon
        |> List.map (fun (s, o, _) -> (s, o))
      in
      let hits, _ = Subseq.range index ~query ~epsilon in
      expected
      = List.map (fun h -> (h.Subseq.series_id, h.Subseq.offset)) hits)

let properties =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_no_false_dismissals_identity;
      prop_no_false_dismissals_mavg;
      prop_subseq_exact;
    ]

let () =
  Alcotest.run "simq_tsindex"
    [
      ( "spec",
        [
          Alcotest.test_case "stretch predicts spectrum" `Quick
            test_spec_stretch_predicts_spectrum;
          Alcotest.test_case "output length" `Quick test_spec_output_length;
        ] );
      ( "dataset",
        [
          Alcotest.test_case "preparation" `Quick test_dataset_preparation;
          Alcotest.test_case "rejects mixed lengths" `Quick
            test_dataset_rejects_mixed_lengths;
        ] );
      ( "range",
        [
          Alcotest.test_case "matches reference for every spec/representation"
            `Quick test_range_matches_reference;
          Alcotest.test_case "rejects bad query lengths" `Quick
            test_range_rejects_bad_query_length;
          Alcotest.test_case "prunes candidates" `Quick test_range_prunes;
          Alcotest.test_case "index invariants" `Quick test_rtree_of_index_is_valid;
          Alcotest.test_case "k=3 configuration" `Quick test_range_with_k3_config;
        ] );
      ( "nearest",
        [
          Alcotest.test_case "matches brute force" `Quick
            test_nearest_matches_brute_force;
        ] );
      ( "maintenance",
        [
          Alcotest.test_case "insert visible to queries" `Quick
            test_kindex_insert_visible;
          Alcotest.test_case "insert validates length" `Quick
            test_kindex_insert_rejects_bad_length;
          Alcotest.test_case "delete" `Quick test_kindex_delete;
        ] );
      ( "constraints",
        [
          Alcotest.test_case "mean/std windows (GK95)" `Quick
            test_range_mean_std_constraints;
          Alcotest.test_case "unnormalised query" `Quick
            test_range_unnormalised_query;
        ] );
      ( "subsequence",
        [
          Alcotest.test_case "range = brute force" `Quick
            test_subseq_range_matches_brute_force;
          Alcotest.test_case "nearest" `Quick test_subseq_nearest;
          Alcotest.test_case "paper example 1.2 floor" `Quick
            test_subseq_paper_example_12;
          Alcotest.test_case "validation" `Quick test_subseq_validation;
          Alcotest.test_case "trails match point layout" `Quick
            test_subseq_trails_match_points;
          Alcotest.test_case "trail validation" `Quick
            test_subseq_trail_validation;
        ] );
      ( "seqscan",
        [
          Alcotest.test_case "variants agree" `Quick test_seqscan_variants_agree;
          Alcotest.test_case "counts page reads" `Quick
            test_seqscan_counts_page_reads;
        ] );
      ( "join",
        [
          Alcotest.test_case "methods agree" `Quick test_join_methods_agree;
          Alcotest.test_case "untransformed matches identity" `Quick
            test_join_untransformed_matches_identity;
          Alcotest.test_case "smoothing admits more pairs" `Quick
            test_join_transformed_finds_more_smoothed_pairs;
        ] );
      ( "planner",
        [
          Alcotest.test_case "selectivity monotone" `Quick
            test_planner_selectivity_monotone;
          Alcotest.test_case "estimates roughly correct" `Quick
            test_planner_estimates_roughly_correct;
          Alcotest.test_case "choice and execution" `Quick
            test_planner_choice_and_execution;
        ] );
      ("properties", properties);
    ]
