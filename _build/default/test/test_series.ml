open Simq_series
module Dsp = Simq_dsp

let check_float = Alcotest.(check (float 1e-9))
let check_close eps = Alcotest.(check (float eps))

let series_testable =
  Alcotest.testable Series.pp (fun a b -> Series.equal ~eps:1e-9 a b)

(* --- Series ----------------------------------------------------------- *)

let test_series_basics () =
  let s = Series.of_list [ 1.; 2.; 3. ] in
  Alcotest.(check int) "length" 3 (Series.length s);
  Alcotest.check series_testable "add" [| 2.; 4.; 6. |] (Series.add s s);
  Alcotest.check series_testable "sub" [| 0.; 0.; 0. |] (Series.sub s s);
  Alcotest.check series_testable "scale" [| 2.; 4.; 6. |] (Series.scale 2. s);
  Alcotest.check series_testable "shift" [| 11.; 12.; 13. |] (Series.shift 10. s);
  Alcotest.check series_testable "reverse sign" [| -1.; -2.; -3. |]
    (Series.reverse_sign s)

let test_series_validate () =
  Alcotest.check_raises "empty" (Invalid_argument "Series.validate: empty series")
    (fun () -> ignore (Series.validate [||]));
  Alcotest.check_raises "nan" (Invalid_argument "Series.validate: non-finite value")
    (fun () -> ignore (Series.validate [| 1.; Float.nan |]))

let test_series_subsequence_and_sampling () =
  let s = [| 0.; 1.; 2.; 3.; 4.; 5. |] in
  Alcotest.check series_testable "subsequence" [| 2.; 3.; 4. |]
    (Series.subsequence s ~pos:2 ~len:3);
  Alcotest.check series_testable "sample every 2" [| 0.; 2.; 4. |]
    (Series.sample_every 2 s);
  Alcotest.check_raises "out of bounds"
    (Invalid_argument "Series.subsequence: out of bounds") (fun () ->
      ignore (Series.subsequence s ~pos:4 ~len:3))

let test_series_dft_roundtrip () =
  let s = [| 3.; 1.; 4.; 1.; 5.; 9.; 2.; 6. |] in
  Alcotest.check series_testable "idft . dft" s (Series.idft (Series.dft s))

(* --- Stats ------------------------------------------------------------ *)

let test_stats_basics () =
  let s = [| 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. |] in
  check_float "mean" 5. (Stats.mean s);
  check_float "variance" 4. (Stats.variance s);
  check_float "std" 2. (Stats.std s);
  check_float "min" 2. (Stats.minimum s);
  check_float "max" 9. (Stats.maximum s)

let test_stats_correlation () =
  let s = [| 1.; 2.; 3.; 4. |] in
  check_float "self correlation" 1. (Stats.correlation s s);
  check_float "anti correlation" (-1.)
    (Stats.correlation s (Series.reverse_sign s));
  check_float "constant series" 0. (Stats.correlation s (Array.make 4 7.))

let test_stats_autocorrelation () =
  let state = Random.State.make [| 90 |] in
  let period = 8 in
  let s = Generator.sine state ~n:64 ~period:(float_of_int period) ~amplitude:1. ~noise:0. in
  check_float "lag 0" 1. (Stats.autocorrelation s ~lag:0);
  Alcotest.(check bool) "periodic signal correlates at its period" true
    (Stats.autocorrelation s ~lag:period > 0.9);
  Alcotest.(check bool) "anti-correlates at half period" true
    (Stats.autocorrelation s ~lag:(period / 2) < -0.9);
  Alcotest.check_raises "bad lag" (Invalid_argument "Stats.autocorrelation: bad lag")
    (fun () -> ignore (Stats.autocorrelation s ~lag:64))

let test_stats_returns () =
  let s = [| 100.; 110.; 99. |] in
  let r = Stats.returns s in
  check_close 1e-9 "up 10%" 0.1 r.(0);
  check_close 1e-9 "down 10%" (-0.1) r.(1);
  let lr = Stats.log_returns s in
  check_close 1e-9 "log up" (log 1.1) lr.(0);
  Alcotest.check_raises "too short"
    (Invalid_argument "Stats.returns: series too short") (fun () ->
      ignore (Stats.returns [| 1. |]));
  Alcotest.check_raises "zero value"
    (Invalid_argument "Stats.returns: zero value") (fun () ->
      ignore (Stats.returns [| 0.; 1. |]));
  Alcotest.check_raises "non-positive"
    (Invalid_argument "Stats.log_returns: non-positive value") (fun () ->
      ignore (Stats.log_returns [| 1.; -1. |]))

(* --- Distance --------------------------------------------------------- *)

let test_distance_paper_example_11 () =
  (* Example 1.1: D(s1, s2) = 11.92. *)
  let d = Distance.euclidean Fixtures.ex11_s1 Fixtures.ex11_s2 in
  check_close 0.01 "D(s1,s2)" 11.92 d

let test_distance_kinds () =
  let a = [| 0.; 0.; 0. |] and b = [| 3.; 4.; 0. |] in
  check_float "euclidean" 5. (Distance.euclidean a b);
  check_float "city block" 7. (Distance.city_block a b);
  check_float "chebyshev" 4. (Distance.chebyshev a b)

let test_distance_early_abandon () =
  let a = [| 0.; 0.; 0.; 0. |] and b = [| 1.; 1.; 1.; 1. |] in
  (match Distance.euclidean_early_abandon ~threshold:3. a b with
  | Some d -> check_float "full distance" 2. d
  | None -> Alcotest.fail "should not abandon");
  (match Distance.euclidean_early_abandon ~threshold:1.5 a b with
  | None -> ()
  | Some _ -> Alcotest.fail "should abandon");
  Alcotest.(check bool) "within" true (Distance.within ~threshold:2. a b);
  Alcotest.(check bool) "not within" false (Distance.within ~threshold:1.9 a b)

(* --- Normal form ------------------------------------------------------ *)

let test_normal_form_properties () =
  let s = Fixtures.ex11_s2 in
  let d = Normal_form.decompose s in
  Alcotest.(check bool) "normalised" true (Normal_form.is_normal d.normalised);
  Alcotest.check series_testable "reconstruct" s (Normal_form.reconstruct d)

let test_normal_form_constant_series () =
  let d = Normal_form.decompose (Array.make 5 3.) in
  check_float "std" 0. d.std;
  check_float "mean" 3. d.mean;
  Alcotest.check series_testable "zero series" (Array.make 5 0.) d.normalised;
  Alcotest.(check bool) "zero series is normal" true
    (Normal_form.is_normal d.normalised)

let test_normal_form_invariance () =
  (* Normal form is invariant under shift and positive scale. *)
  let s = Fixtures.ex11_s1 in
  let shifted_scaled = Series.shift 5. (Series.scale 3. s) in
  Alcotest.check series_testable "invariant"
    (Normal_form.normalise s)
    (Normal_form.normalise shifted_scaled)

(* --- Moving average --------------------------------------------------- *)

let test_ma_paper_example_11 () =
  (* Example 1.1: the 3-day moving averages are 0.47 apart. *)
  let w = Dsp.Window.uniform 3 in
  let m1 = Moving_average.circular w Fixtures.ex11_s1 in
  let m2 = Moving_average.circular w Fixtures.ex11_s2 in
  check_close 0.01 "D(ma3 s1, ma3 s2)" 0.47 (Distance.euclidean m1 m2)

let test_ma_circular_matches_dft () =
  let s = Generator.random_walk (Random.State.make [| 5 |]) 32 in
  let w = Dsp.Window.uniform 5 in
  Alcotest.(check bool) "circular = via_dft" true
    (Series.equal ~eps:1e-6 (Moving_average.circular w s)
       (Moving_average.via_dft w s))

let test_ma_sliding () =
  let s = [| 1.; 2.; 3.; 4.; 5. |] in
  Alcotest.check series_testable "sliding 3" [| 2.; 3.; 4. |]
    (Moving_average.sliding 3 s);
  Alcotest.check series_testable "sliding 1 is identity" s
    (Moving_average.sliding 1 s);
  Alcotest.check_raises "too wide"
    (Invalid_argument "Moving_average.sliding: window wider than series")
    (fun () -> ignore (Moving_average.sliding 6 s))

let test_ma_repeated () =
  let s = Fixtures.ex11_s1 in
  let w = Dsp.Window.uniform 3 in
  Alcotest.check series_testable "zero times is identity" s
    (Moving_average.repeated 0 w s);
  let twice = Moving_average.circular w (Moving_average.circular w s) in
  Alcotest.(check bool) "twice" true
    (Series.equal ~eps:1e-9 twice (Moving_average.repeated 2 w s))

let test_ma_smooths_towards_mean () =
  (* Example 2.3's observation: repeated averaging flattens a series. *)
  let s = Generator.random_walk (Random.State.make [| 17 |]) 64 in
  let w = Dsp.Window.uniform 8 in
  let variance_after k = Stats.variance (Moving_average.repeated k w s) in
  Alcotest.(check bool) "variance decreases" true
    (variance_after 1 < Stats.variance s && variance_after 4 < variance_after 1);
  check_close 1e-6 "mean preserved" (Stats.mean s)
    (Stats.mean (Moving_average.circular w s))

(* --- Warp ------------------------------------------------------------- *)

let test_warp_paper_example_12 () =
  (* Example 1.2: scaling the time dimension of p by 2 gives s. *)
  Alcotest.check series_testable "expand 2 p = s" Fixtures.ex12_s
    (Warp.expand 2 Fixtures.ex12_p)

let test_warp_expand_inverse_of_sampling () =
  let s = Generator.random_walk (Random.State.make [| 23 |]) 16 in
  Alcotest.check series_testable "sample . expand = id" s
    (Series.sample_every 3 (Warp.expand 3 s))

let test_warp_spectrum_prediction () =
  (* Appendix A: the predicted coefficients match the DFT of the
     expanded series. *)
  List.iter
    (fun (m, n) ->
      let s = Generator.random_walk (Random.State.make [| (m * 100) + n |]) n in
      let predicted = Warp.spectrum_of_expanded m s in
      let actual = Dsp.Fft.fft_real (Warp.expand m s) in
      let actual_prefix = Array.sub actual 0 n in
      Alcotest.(check bool)
        (Printf.sprintf "m=%d n=%d" m n)
        true
        (Dsp.Cpx.close_arrays ~eps:1e-6 predicted actual_prefix))
    [ (2, 8); (3, 8); (2, 15); (5, 6) ]

let test_warp_coefficients_f0 () =
  (* a_0 = m: the mean scales by the stretch factor (in unnormalised
     terms). *)
  let a = Warp.coefficients ~m:4 ~n:8 ~k:1 in
  check_float "a_0 = m" 4. (Dsp.Cpx.re a.(0));
  check_float "a_0 imaginary" 0. (Dsp.Cpx.im a.(0))

let test_dtw () =
  let s = Fixtures.ex12_s and p = Fixtures.ex12_p in
  check_float "dtw self" 0. (Warp.dtw s s);
  check_float "dtw warped" 0. (Warp.dtw s p);
  Alcotest.(check bool) "dtw <= euclidean" true
    (Warp.dtw s (Series.shift 1. s) <= Distance.euclidean s (Series.shift 1. s) +. 1e-9);
  Alcotest.(check bool) "banded dtw still finite" true
    (Float.is_finite (Warp.dtw ~band:1 s (Series.shift 1. s)))

(* --- Generator -------------------------------------------------------- *)

let test_generator_random_walk_shape () =
  let s = Generator.random_walk (Random.State.make [| 1 |]) 128 in
  Alcotest.(check int) "length" 128 (Series.length s);
  Alcotest.(check bool) "start in [20,99]" true (s.(0) >= 20. && s.(0) <= 99.);
  for t = 1 to 127 do
    Alcotest.(check bool) "step within [-4,4]" true
      (Float.abs (s.(t) -. s.(t - 1)) <= 4.)
  done

let test_generator_reproducible () =
  let a = Generator.random_walks ~seed:7 ~count:3 ~n:32 in
  let b = Generator.random_walks ~seed:7 ~count:3 ~n:32 in
  Array.iteri
    (fun idx s -> Alcotest.check series_testable "same batch" s b.(idx))
    a

let test_generator_sine_and_trend () =
  let state = Random.State.make [| 3 |] in
  let s = Generator.sine state ~n:64 ~period:16. ~amplitude:2. ~noise:0. in
  Alcotest.(check bool) "sine bounded" true
    (Stats.maximum s <= 2.0001 && Stats.minimum s >= -2.0001);
  let t = Generator.trend state ~n:10 ~start:1. ~slope:2. ~noise:0. in
  check_float "trend endpoint" 19. t.(9)

(* --- property-based --------------------------------------------------- *)

let series_gen =
  QCheck.Gen.(
    let* n = int_range 2 64 in
    array_size (return n) (float_range (-50.) 50.))

let arb_series = QCheck.make ~print:QCheck.Print.(array float) series_gen

let arb_series_pair =
  (* Two series of the same length. *)
  let gen =
    QCheck.Gen.(
      let* n = int_range 2 48 in
      let* a = array_size (return n) (float_range (-50.) 50.) in
      let* b = array_size (return n) (float_range (-50.) 50.) in
      return (a, b))
  in
  QCheck.make ~print:QCheck.Print.(pair (array float) (array float)) gen

let prop_euclidean_metric =
  QCheck.Test.make ~name:"euclidean is symmetric and non-negative" ~count:100
    arb_series_pair (fun (a, b) ->
      let d = Distance.euclidean a b in
      d >= 0. && Float.abs (d -. Distance.euclidean b a) <= 1e-9)

let prop_euclidean_triangle =
  let gen =
    QCheck.Gen.(
      let* n = int_range 2 32 in
      let* a = array_size (return n) (float_range (-50.) 50.) in
      let* b = array_size (return n) (float_range (-50.) 50.) in
      let* c = array_size (return n) (float_range (-50.) 50.) in
      return (a, b, c))
  in
  QCheck.Test.make ~name:"euclidean triangle inequality" ~count:100
    (QCheck.make gen) (fun (a, b, c) ->
      Distance.euclidean a c
      <= Distance.euclidean a b +. Distance.euclidean b c +. 1e-6)

let prop_normal_form_roundtrip =
  QCheck.Test.make ~name:"reconstruct . decompose = id" ~count:100 arb_series
    (fun s ->
      Series.equal ~eps:1e-6 s (Normal_form.reconstruct (Normal_form.decompose s)))

let prop_ma_equals_dft_route =
  QCheck.Test.make ~name:"circular MA = frequency-domain MA" ~count:60
    (QCheck.pair arb_series (QCheck.int_range 1 8)) (fun (s, m) ->
      QCheck.assume (m <= Array.length s);
      let w = Dsp.Window.uniform m in
      Series.equal ~eps:1e-5 (Moving_average.circular w s)
        (Moving_average.via_dft w s))

let prop_distance_time_freq =
  QCheck.Test.make ~name:"distance equal in time and frequency domain"
    ~count:60 arb_series_pair (fun (a, b) ->
      let time = Distance.euclidean a b in
      let freq = Dsp.Spectrum.distance (Series.dft a) (Series.dft b) in
      Float.abs (time -. freq) <= 1e-6 *. (1. +. time))

let prop_warp_expand_length =
  QCheck.Test.make ~name:"expand multiplies length and preserves energy ratio"
    ~count:60
    (QCheck.pair arb_series (QCheck.int_range 1 4))
    (fun (s, m) ->
      let e = Warp.expand m s in
      Array.length e = m * Array.length s
      && Float.abs
           (Dsp.Spectrum.energy_real e -. (float_of_int m *. Dsp.Spectrum.energy_real s))
         <= 1e-6 *. (1. +. Dsp.Spectrum.energy_real e))

let properties =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_euclidean_metric;
      prop_euclidean_triangle;
      prop_normal_form_roundtrip;
      prop_ma_equals_dft_route;
      prop_distance_time_freq;
      prop_warp_expand_length;
    ]

let () =
  Alcotest.run "simq_series"
    [
      ( "series",
        [
          Alcotest.test_case "basics" `Quick test_series_basics;
          Alcotest.test_case "validate" `Quick test_series_validate;
          Alcotest.test_case "subsequence and sampling" `Quick
            test_series_subsequence_and_sampling;
          Alcotest.test_case "dft roundtrip" `Quick test_series_dft_roundtrip;
        ] );
      ( "stats",
        [
          Alcotest.test_case "basics" `Quick test_stats_basics;
          Alcotest.test_case "correlation" `Quick test_stats_correlation;
          Alcotest.test_case "autocorrelation" `Quick test_stats_autocorrelation;
          Alcotest.test_case "returns" `Quick test_stats_returns;
        ] );
      ( "distance",
        [
          Alcotest.test_case "paper example 1.1" `Quick
            test_distance_paper_example_11;
          Alcotest.test_case "distance kinds" `Quick test_distance_kinds;
          Alcotest.test_case "early abandon" `Quick test_distance_early_abandon;
        ] );
      ( "normal form",
        [
          Alcotest.test_case "properties" `Quick test_normal_form_properties;
          Alcotest.test_case "constant series" `Quick
            test_normal_form_constant_series;
          Alcotest.test_case "shift/scale invariance" `Quick
            test_normal_form_invariance;
        ] );
      ( "moving average",
        [
          Alcotest.test_case "paper example 1.1" `Quick test_ma_paper_example_11;
          Alcotest.test_case "circular matches dft route" `Quick
            test_ma_circular_matches_dft;
          Alcotest.test_case "sliding" `Quick test_ma_sliding;
          Alcotest.test_case "repeated" `Quick test_ma_repeated;
          Alcotest.test_case "smooths towards mean" `Quick
            test_ma_smooths_towards_mean;
        ] );
      ( "warp",
        [
          Alcotest.test_case "paper example 1.2" `Quick test_warp_paper_example_12;
          Alcotest.test_case "expand inverse of sampling" `Quick
            test_warp_expand_inverse_of_sampling;
          Alcotest.test_case "spectrum prediction (Appendix A)" `Quick
            test_warp_spectrum_prediction;
          Alcotest.test_case "warp coefficient at f=0" `Quick
            test_warp_coefficients_f0;
          Alcotest.test_case "dtw" `Quick test_dtw;
        ] );
      ( "generator",
        [
          Alcotest.test_case "random walk shape" `Quick
            test_generator_random_walk_shape;
          Alcotest.test_case "reproducible" `Quick test_generator_reproducible;
          Alcotest.test_case "sine and trend" `Quick test_generator_sine_and_trend;
        ] );
      ("properties", properties);
    ]
