test/test_metric.ml: Alcotest Array Bk_tree Float Linear_scan List Metric Printf QCheck QCheck_alcotest Random Simq_metric String Vp_tree
