test/test_storage.ml: Alcotest Array Buffer_pool Csv Filename Fun Io_stats List Relation Simq_series Simq_storage String Sys
