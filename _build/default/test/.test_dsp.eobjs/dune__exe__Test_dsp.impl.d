test/test_dsp.ml: Alcotest Array Convolution Cpx Dft Fft Float List Printf QCheck QCheck_alcotest Random Simq_dsp Spectrum Window
