test/test_dsp.mli:
