test/test_core.ml: Alcotest Array Calculus Eval Float Fun List Option Pattern Printf QCheck QCheck_alcotest Similarity Simq_core String Transformation
