test/test_shapes.ml: Alcotest Array Float Format List Printf QCheck QCheck_alcotest Random Shape Signature Simq_geometry Simq_shapes
