test/test_rewrite.ml: Alcotest Array Buffer Char Float Gen_edit List Option Printf QCheck QCheck_alcotest Random Rule Search Simq_rewrite String
