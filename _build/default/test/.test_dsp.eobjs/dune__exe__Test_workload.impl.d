test/test_workload.ml: Alcotest Array Float List Printf Queries Random Simq_series Simq_workload Stocklike
