test/test_geometry.ml: Alcotest Array Complex_transform Coords Float Linear_transform List Option Point QCheck QCheck_alcotest Random Rect Region Simq_dsp Simq_geometry
