test/test_ql.ml: Alcotest Format List Printf Ql Simq_tsindex Spec String
