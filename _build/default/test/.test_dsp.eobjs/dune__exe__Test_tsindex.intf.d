test/test_tsindex.mli:
