test/test_series.ml: Alcotest Array Distance Fixtures Float Generator List Moving_average Normal_form Printf QCheck QCheck_alcotest Random Series Simq_dsp Simq_series Stats Warp
