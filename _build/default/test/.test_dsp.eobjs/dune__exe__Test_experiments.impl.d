test/test_experiments.ml: Alcotest Experiments List Printf Simq_experiments Simq_report String
