open Simq_shapes
module Rect = Simq_geometry.Rect

let check_float = Alcotest.(check (float 1e-9))
let box x0 y0 x1 y1 = (x0, y0, x1, y1)
let unit_square = Shape.of_boxes [ box 0. 0. 1. 1. ]

(* --- Shape ------------------------------------------------------------- *)

let test_shape_validation () =
  Alcotest.check_raises "empty" (Invalid_argument "Shape.create: empty shape")
    (fun () -> ignore (Shape.create []));
  Alcotest.check_raises "wrong dims"
    (Invalid_argument "Shape.create: rectangles must be 2-dimensional")
    (fun () ->
      ignore
        (Shape.create [ Rect.create ~lo:[| 0.; 0.; 0. |] ~hi:[| 1.; 1.; 1. |] ]))

let test_shape_area_disjoint () =
  let s = Shape.of_boxes [ box 0. 0. 1. 1.; box 2. 0. 4. 1. ] in
  check_float "1 + 2" 3. (Shape.area s)

let test_shape_area_overlapping () =
  (* Two 2x2 squares overlapping in a 1x2 strip: 4 + 4 - 2 = 6. *)
  let s = Shape.of_boxes [ box 0. 0. 2. 2.; box 1. 0. 3. 2. ] in
  check_float "union counts overlap once" 6. (Shape.area s)

let test_shape_area_nested () =
  let s = Shape.of_boxes [ box 0. 0. 4. 4.; box 1. 1. 2. 2. ] in
  check_float "nested adds nothing" 16. (Shape.area s)

let test_shape_mbr_and_contains () =
  let s = Shape.of_boxes [ box 0. 0. 1. 1.; box 2. 2. 3. 4. ] in
  let bb = Shape.mbr s in
  Alcotest.(check bool) "mbr" true
    (Rect.equal bb (Rect.create ~lo:[| 0.; 0. |] ~hi:[| 3.; 4. |]));
  Alcotest.(check bool) "inside first" true (Shape.contains s (0.5, 0.5));
  Alcotest.(check bool) "inside second" true (Shape.contains s (2.5, 3.));
  Alcotest.(check bool) "in the gap" false (Shape.contains s (1.5, 1.5))

let test_shape_transformations () =
  let s = unit_square in
  let moved = Shape.translate s ~dx:2. ~dy:3. in
  Alcotest.(check bool) "translated" true (Shape.contains moved (2.5, 3.5));
  check_float "area preserved" 1. (Shape.area moved);
  let grown = Shape.scale s ~sx:2. ~sy:3. in
  check_float "area scales" 6. (Shape.area grown);
  Alcotest.check_raises "bad scale"
    (Invalid_argument "Shape.scale: factors must be positive") (fun () ->
      ignore (Shape.scale s ~sx:0. ~sy:1.))

let test_shape_normalise () =
  (* An L-shape anywhere at any size normalises to the same shape. *)
  let l = Shape.of_boxes [ box 0. 0. 2. 1.; box 0. 0. 1. 3. ] in
  let transformed =
    Shape.translate (Shape.scale l ~sx:5. ~sy:5.) ~dx:(-7.) ~dy:11.
  in
  check_float "normal forms coincide" 0.
    (Shape.symmetric_difference_area (Shape.normalise l)
       (Shape.normalise transformed));
  let n = Shape.normalise l in
  let bb = Shape.mbr n in
  check_float "origin" 0. bb.Rect.lo.(0);
  check_float "unit long side" 1. (Float.max (bb.Rect.hi.(0)) (bb.Rect.hi.(1)))

let test_symmetric_difference () =
  let a = unit_square in
  let b = Shape.of_boxes [ box 0.5 0. 1.5 1. ] in
  check_float "self" 0. (Shape.symmetric_difference_area a a);
  check_float "half + half" 1. (Shape.symmetric_difference_area a b);
  check_float "symmetric" (Shape.symmetric_difference_area a b)
    (Shape.symmetric_difference_area b a);
  (* Overlap representation does not matter: one box vs two halves. *)
  let split = Shape.of_boxes [ box 0. 0. 0.5 1.; box 0.5 0. 1. 1. ] in
  check_float "representation independent" 0.
    (Shape.symmetric_difference_area a split)

(* --- Signature ---------------------------------------------------------- *)

let letter_l = Shape.of_boxes [ box 0. 0. 1. 4.; box 0. 0. 3. 1. ]
let letter_t = Shape.of_boxes [ box 0. 3. 3. 4.; box 1. 0. 2. 4. ]
let letter_i = Shape.of_boxes [ box 1. 0. 2. 4. ]
let letter_o =
  Shape.of_boxes
    [ box 0. 0. 3. 1.; box 0. 3. 3. 4.; box 0. 0. 1. 4.; box 2. 0. 3. 4. ]

let test_signature_identical_shapes () =
  check_float "same shape" 0. (Signature.distance letter_l letter_l);
  (* Signatures are position/size invariant via normalisation. *)
  let moved = Shape.translate (Shape.scale letter_l ~sx:3. ~sy:3.) ~dx:9. ~dy:1. in
  check_float "invariant" 0. (Signature.distance letter_l moved)

let test_signature_discriminates () =
  Alcotest.(check bool) "L vs T differ" true
    (Signature.distance letter_l letter_t > 0.1);
  Alcotest.(check bool) "L closer to L-variant than to I" true
    (let variant = Shape.of_boxes [ box 0. 0. 1. 4.; box 0. 0. 2.8 1. ] in
     Signature.distance letter_l variant < Signature.distance letter_l letter_i)

let test_signature_padding () =
  (* k larger than the rectangle count pads with zeros and still works. *)
  let p = Signature.point ~k:5 letter_i in
  Alcotest.(check int) "dims" 20 (Array.length p);
  check_float "padding" 0. p.(19)

let test_index_range_and_nearest () =
  let store =
    Signature.build
      [ ("L", letter_l); ("T", letter_t); ("I", letter_i); ("O", letter_o) ]
  in
  Alcotest.(check int) "size" 4 (Signature.size store);
  (* A slightly perturbed L finds L first. *)
  let query = Shape.of_boxes [ box 0. 0. 1.05 4.; box 0. 0. 3. 0.95 ] in
  (match Signature.nearest store ~query ~k:2 with
  | best :: _ -> Alcotest.(check string) "nearest is L" "L" best.Signature.name
  | [] -> Alcotest.fail "no hits");
  let hits = Signature.range store ~query ~epsilon:0.2 in
  Alcotest.(check bool) "range finds L" true
    (List.exists (fun h -> h.Signature.name = "L") hits);
  Alcotest.(check bool) "range excludes I" true
    (not (List.exists (fun h -> h.Signature.name = "I") hits))

let test_index_range_matches_brute_force () =
  (* Randomised shapes: index range = brute-force signature filter. *)
  let state = Random.State.make [| 7 |] in
  let random_shape () =
    let boxes =
      List.init
        (1 + Random.State.int state 4)
        (fun _ ->
          let x = Random.State.float state 10. in
          let y = Random.State.float state 10. in
          box x y (x +. 0.5 +. Random.State.float state 5.)
            (y +. 0.5 +. Random.State.float state 5.))
    in
    Shape.of_boxes boxes
  in
  let shapes =
    List.init 80 (fun i -> (Printf.sprintf "s%d" i, random_shape ()))
  in
  let store = Signature.build shapes in
  for _ = 1 to 10 do
    let query = random_shape () in
    let epsilon = Random.State.float state 1.5 in
    let expected =
      List.filter_map
        (fun (name, shape) ->
          let d = Signature.distance query shape in
          if d <= epsilon then Some name else None)
        shapes
      |> List.sort compare
    in
    let actual =
      Signature.range store ~query ~epsilon
      |> List.map (fun h -> h.Signature.name)
      |> List.sort compare
    in
    Alcotest.(check (list string)) "range equivalence" expected actual
  done

let test_refine () =
  let store =
    Signature.build [ ("L", letter_l); ("T", letter_t); ("I", letter_i) ]
  in
  let hits = Signature.range store ~query:letter_l ~epsilon:5. in
  Alcotest.(check int) "everything passes the filter" 3 (List.length hits);
  let refined = Signature.refine hits ~query:letter_l ~max_area:0.05 in
  (match refined with
  | [ (hit, a) ] ->
    Alcotest.(check string) "only L survives" "L" hit.Signature.name;
    check_float "zero difference" 0. a
  | other -> Alcotest.failf "expected exactly L, got %d" (List.length other))

(* --- properties ---------------------------------------------------------- *)

let shape_gen =
  QCheck.Gen.(
    let box =
      let* x = float_range 0. 8. in
      let* y = float_range 0. 8. in
      let* w = float_range 0.2 4. in
      let* h = float_range 0.2 4. in
      return (x, y, x +. w, y +. h)
    in
    let* count = int_range 1 4 in
    let* boxes = list_size (return count) box in
    return (Shape.of_boxes boxes))

let arb_shape =
  QCheck.make ~print:(fun s -> Format.asprintf "%a" Shape.pp s) shape_gen

let prop_symdiff_pseudometric =
  QCheck.Test.make ~name:"symmetric difference is a pseudometric" ~count:60
    (QCheck.triple arb_shape arb_shape arb_shape) (fun (a, b, c) ->
      let d = Shape.symmetric_difference_area in
      let dab = d a b and dba = d b a and dac = d a c and dbc = d b c in
      dab >= 0.
      && Float.abs (dab -. dba) <= 1e-9
      && Float.abs (d a a) <= 1e-9
      && dac <= dab +. dbc +. 1e-6)

let prop_normalise_idempotent =
  QCheck.Test.make ~name:"normalise is idempotent" ~count:60 arb_shape
    (fun s ->
      let n = Shape.normalise s in
      Shape.symmetric_difference_area n (Shape.normalise n) <= 1e-9)

let prop_signature_invariance =
  QCheck.Test.make ~name:"signature invariant under translate+scale"
    ~count:60
    (QCheck.triple arb_shape (QCheck.float_range 0.5 4.)
       (QCheck.float_range (-10.) 10.))
    (fun (s, factor, offset) ->
      let moved =
        Shape.translate (Shape.scale s ~sx:factor ~sy:factor) ~dx:offset
          ~dy:(-.offset)
      in
      Signature.distance s moved <= 1e-6)

let prop_area_bounded_by_mbr =
  QCheck.Test.make ~name:"area <= mbr area" ~count:100 arb_shape (fun s ->
      Shape.area s <= Rect.area (Shape.mbr s) +. 1e-9)

let properties =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_symdiff_pseudometric;
      prop_normalise_idempotent;
      prop_signature_invariance;
      prop_area_bounded_by_mbr;
    ]

let () =
  Alcotest.run "simq_shapes"
    [
      ( "shape",
        [
          Alcotest.test_case "validation" `Quick test_shape_validation;
          Alcotest.test_case "area, disjoint" `Quick test_shape_area_disjoint;
          Alcotest.test_case "area, overlapping" `Quick
            test_shape_area_overlapping;
          Alcotest.test_case "area, nested" `Quick test_shape_area_nested;
          Alcotest.test_case "mbr and contains" `Quick test_shape_mbr_and_contains;
          Alcotest.test_case "transformations" `Quick test_shape_transformations;
          Alcotest.test_case "normalise" `Quick test_shape_normalise;
          Alcotest.test_case "symmetric difference" `Quick
            test_symmetric_difference;
        ] );
      ( "signature",
        [
          Alcotest.test_case "identical shapes" `Quick
            test_signature_identical_shapes;
          Alcotest.test_case "discriminates" `Quick test_signature_discriminates;
          Alcotest.test_case "padding" `Quick test_signature_padding;
          Alcotest.test_case "index range and nearest" `Quick
            test_index_range_and_nearest;
          Alcotest.test_case "range = brute force" `Quick
            test_index_range_matches_brute_force;
          Alcotest.test_case "refine" `Quick test_refine;
        ] );
      ("properties", properties);
    ]
