open Simq_core

let d0 x y = Float.abs (x -. y)
let shift delta ~cost = Transformation.create ~name:(Printf.sprintf "shift%+g" delta) ~cost (fun x -> x +. delta)

(* --- Transformation ----------------------------------------------------- *)

let test_transformation_basics () =
  let t = shift 5. ~cost:1. in
  Alcotest.(check (float 0.)) "apply" 7. (Transformation.apply t 2.);
  Alcotest.(check (float 0.)) "cost" 1. (Transformation.cost t);
  Alcotest.(check (float 0.)) "identity" 2.
    (Transformation.apply Transformation.identity 2.);
  Alcotest.(check (float 0.)) "identity free" 0.
    (Transformation.cost Transformation.identity)

let test_transformation_compose () =
  let t = Transformation.compose (shift 5. ~cost:1.) (shift 2. ~cost:0.5) in
  Alcotest.(check (float 0.)) "apply" 7. (Transformation.apply t 0.);
  Alcotest.(check (float 0.)) "costs add" 1.5 (Transformation.cost t)

let test_transformation_validation () =
  Alcotest.check_raises "negative cost"
    (Invalid_argument "Transformation.create: cost must be finite and non-negative")
    (fun () -> ignore (Transformation.create ~name:"bad" ~cost:(-1.) Fun.id))

(* --- Pattern -------------------------------------------------------------- *)

let equal_f (a : float) b = a = b

let test_pattern_matches () =
  Alcotest.(check bool) "const yes" true
    (Pattern.matches ~equal:equal_f (Pattern.Const 3.) 3.);
  Alcotest.(check bool) "const no" false
    (Pattern.matches ~equal:equal_f (Pattern.Const 3.) 4.);
  Alcotest.(check bool) "any" true (Pattern.matches ~equal:equal_f Pattern.Any 9.);
  Alcotest.(check bool) "one_of" true
    (Pattern.matches ~equal:equal_f (Pattern.One_of [ 1.; 2. ]) 2.);
  Alcotest.(check bool) "filter" true
    (Pattern.matches ~equal:equal_f
       (Pattern.Filter { name = "pos"; pred = (fun x -> x > 0.) })
       1.);
  Alcotest.(check bool) "union" true
    (Pattern.matches ~equal:equal_f
       (Pattern.Union (Pattern.Const 1., Pattern.Const 2.))
       2.)

let test_pattern_denotation () =
  let universe = [ 1.; 2.; 3.; 4. ] in
  Alcotest.(check (list (float 0.))) "any = universe" universe
    (Pattern.denotation ~equal:equal_f ~universe Pattern.Any);
  Alcotest.(check (list (float 0.))) "filter" [ 3.; 4. ]
    (Pattern.denotation ~equal:equal_f ~universe
       (Pattern.Filter { name = "big"; pred = (fun x -> x > 2.) }));
  (* A constant outside the universe still belongs to the denotation. *)
  Alcotest.(check (list (float 0.))) "fresh constant" [ 9. ]
    (Pattern.denotation ~equal:equal_f ~universe:[ 1. ] (Pattern.Const 9.)
    |> List.filter (fun x -> x = 9.))

let test_pattern_is_constant () =
  Alcotest.(check bool) "const" true
    (Option.is_some (Pattern.is_constant (Pattern.Const 1.)));
  Alcotest.(check bool) "union of consts" true
    (Option.is_some
       (Pattern.is_constant (Pattern.Union (Pattern.Const 1., Pattern.One_of [ 2. ]))));
  Alcotest.(check bool) "any is not" true
    (Option.is_none (Pattern.is_constant Pattern.Any))

(* --- Similarity (Eq. 10) ---------------------------------------------------- *)

let test_similarity_no_transformations () =
  Alcotest.(check (float 1e-9)) "D = D0" 3.
    (Similarity.distance ~transformations:[] ~d0 2. 5.)

let test_similarity_one_side () =
  (* Shifting left by +5 at cost 1 turns D(0,5)=5 into 1. *)
  let transformations = [ shift 5. ~cost:1. ] in
  let w = Similarity.witness ~transformations ~d0 0. 5. in
  Alcotest.(check (float 1e-9)) "distance" 1. w.Similarity.distance;
  Alcotest.(check (float 1e-9)) "residual" 0. w.Similarity.residual;
  Alcotest.(check bool) "applied on one side" true
    (w.Similarity.left_applied = [ "shift+5" ]
    || w.Similarity.right_applied = [ "shift-5" ])

let test_similarity_repeated_and_both_sides () =
  (* D(0, 10) with shift +5 @ 1: two applications, cost 2. *)
  let transformations = [ shift 5. ~cost:1. ] in
  Alcotest.(check (float 1e-9)) "two applications" 2.
    (Similarity.distance ~transformations ~d0 0. 10.);
  (* With shifts +5 and -5 both available the minimum may mix sides:
     D(0, 10) = 2 still (e.g. +5 on left, -5 on right). *)
  let transformations = [ shift 5. ~cost:1.; shift (-5.) ~cost:1. ] in
  Alcotest.(check (float 1e-9)) "mixed sides" 2.
    (Similarity.distance ~transformations ~d0 0. 10.)

let test_similarity_never_exceeds_d0 () =
  (* An expensive useless transformation is ignored. *)
  let transformations = [ shift 100. ~cost:50. ] in
  Alcotest.(check (float 1e-9)) "D = D0" 4.
    (Similarity.distance ~transformations ~d0 1. 5.)

let test_similarity_respects_bound () =
  let transformations = [ shift 5. ~cost:3. ] in
  (* Default bound is D0 = 5, so one application (cost 3) is explored. *)
  Alcotest.(check (float 1e-9)) "found within default bound" 3.
    (Similarity.distance ~transformations ~d0 0. 5.);
  (* Tighter bound cuts the search; distance falls back to D0 estimate. *)
  Alcotest.(check (float 1e-9)) "bound too small" 5.
    (Similarity.distance ~bound:2. ~transformations ~d0 0. 5.)

let test_similarity_budget () =
  (* Zero-cost shifts generate unboundedly many states. *)
  let transformations = [ shift 0.1 ~cost:0. ] in
  try
    ignore
      (Similarity.distance ~max_expansions:100 ~transformations ~d0 0. 1000.);
    Alcotest.fail "expected Budget_exceeded"
  with Similarity.Budget_exceeded -> ()

let test_similar_predicate () =
  let transformations = [ shift 5. ~cost:1. ] in
  Alcotest.(check bool) "similar" true
    (Similarity.similar ~transformations ~d0 ~bound:1.5 0. 5.);
  Alcotest.(check bool) "not similar" false
    (Similarity.similar ~transformations ~d0 ~bound:0.5 0. 5.)

let test_similarity_witness_two_steps () =
  (* D(0, 10) with only shift +5 @ 1: the witness records two left
     applications (or two right with -5 unavailable, so left). *)
  let transformations = [ shift 5. ~cost:1. ] in
  let w = Similarity.witness ~transformations ~d0 0. 10. in
  Alcotest.(check (float 1e-9)) "distance" 2. w.Similarity.distance;
  Alcotest.(check (float 1e-9)) "cost" 2. w.Similarity.cost;
  Alcotest.(check int) "two applications" 2
    (List.length (w.Similarity.left_applied @ w.Similarity.right_applied));
  Alcotest.(check (float 1e-9)) "residual zero" 0. w.Similarity.residual

(* --- Eval ------------------------------------------------------------------- *)

let collection =
  Array.of_list
    (List.mapi (fun id v -> { Eval.id; obj = v }) [ 0.; 2.; 4.; 6.; 8. ])

let ids hits = List.map (fun h -> h.Eval.item.Eval.id) hits

let test_eval_range () =
  let hits = Eval.range ~d:d0 collection ~query:4. ~epsilon:2. in
  Alcotest.(check (list int)) "ids" [ 1; 2; 3 ] (ids hits)

let test_eval_range_with_transform () =
  (* T doubles objects: |2o - 8| <= 1 selects o = 4 (and only it). *)
  let double = Transformation.create ~name:"double" ~cost:0. (fun x -> 2. *. x) in
  let hits = Eval.range ~d:d0 ~transform:double collection ~query:8. ~epsilon:1. in
  Alcotest.(check (list int)) "ids" [ 2 ] (ids hits);
  (* Results carry the original object, not the transformed one. *)
  Alcotest.(check (float 0.)) "untransformed" 4.
    (List.hd hits).Eval.item.Eval.obj

let test_eval_range_pattern () =
  let pattern = Pattern.Filter { name = "small"; pred = (fun x -> x < 5.) } in
  let hits =
    Eval.range_pattern ~d:d0 ~equal:equal_f collection ~pattern ~query:4.
      ~epsilon:10.
  in
  Alcotest.(check (list int)) "pattern filters" [ 0; 1; 2 ] (ids hits)

let test_eval_all_pairs () =
  let pairs = Eval.all_pairs ~d:d0 collection ~epsilon:2. in
  (* Adjacent values differ by 2. *)
  Alcotest.(check int) "adjacent pairs" 4 (List.length pairs);
  List.iter
    (fun (a, b, dist) ->
      Alcotest.(check bool) "ordered" true (a.Eval.id < b.Eval.id);
      Alcotest.(check (float 1e-9)) "distance" 2. dist)
    pairs

let test_eval_nearest () =
  let hits = Eval.nearest ~d:d0 collection ~query:5. ~k:2 in
  Alcotest.(check (list int)) "two closest" [ 2; 3 ]
    (List.sort compare (ids hits))

let test_eval_similar_set () =
  let transformations = [ shift 2. ~cost:0.5 ] in
  (* Query 10: object 8 reaches it with one shift (cost .5), object 6
     with two (cost 1.0); bound 0.75 keeps only object 8. *)
  let hits =
    Eval.similar_set ~transformations ~d0 collection ~query:10. ~bound:0.75
  in
  Alcotest.(check (list int)) "ids" [ 4 ] (ids hits)

(* --- Calculus ----------------------------------------------------------------- *)

let similar_shift ~bound x y =
  (* Similarity via shifts of +-2 at cost 1 each. *)
  let transformations = [ shift 2. ~cost:1.; shift (-2.) ~cost:1. ] in
  Similarity.similar ~transformations ~d0 ~bound x y

let database = [ ("r", [| 0.; 2.; 4.; 10. |]); ("s", [| 2.; 3.; 10. |]) ]

let eval_ok q =
  match Calculus.eval ~equal:equal_f ~similar:similar_shift ~database q with
  | Ok tuples -> tuples
  | Error msg -> Alcotest.failf "eval failed: %s" msg

let test_calculus_free_and_bound () =
  let f =
    Calculus.And
      ( Calculus.Member { term = Calculus.Var "x"; relation = "r" },
        Calculus.Sim
          { left = Calculus.Var "x"; right = Calculus.Var "y"; bound = 1. } )
  in
  Alcotest.(check (list string)) "free vars in order" [ "x"; "y" ]
    (Calculus.free_variables f)

let test_calculus_range_restriction () =
  let member v r = Calculus.Member { term = Calculus.Var v; relation = r } in
  let sim v c bound =
    Calculus.Sim { left = Calculus.Var v; right = Calculus.Const c; bound }
  in
  Alcotest.(check bool) "member binds" true
    (Calculus.range_restricted
       { Calculus.head = [ "x" ]; body = Calculus.And (member "x" "r", sim "x" 1. 1.) });
  Alcotest.(check bool) "sim alone does not bind" false
    (Calculus.range_restricted
       { Calculus.head = [ "x" ]; body = sim "x" 1. 1. });
  Alcotest.(check bool) "negation does not bind" false
    (Calculus.range_restricted
       { Calculus.head = [ "x" ]; body = Calculus.Not (member "x" "r") });
  Alcotest.(check bool) "or needs both branches" false
    (Calculus.range_restricted
       { Calculus.head = [ "x" ];
         body = Calculus.Or (member "x" "r", sim "x" 1. 1.) });
  Alcotest.(check bool) "or with both branches binding" true
    (Calculus.range_restricted
       { Calculus.head = [ "x" ];
         body = Calculus.Or (member "x" "r", member "x" "s") });
  Alcotest.(check bool) "constant pattern binds" true
    (Calculus.range_restricted
       { Calculus.head = [ "x" ];
         body =
           Calculus.Matches
             { term = Calculus.Var "x"; pattern = Pattern.One_of [ 1.; 2. ] } });
  Alcotest.(check bool) "head variable missing from body" false
    (Calculus.range_restricted
       { Calculus.head = [ "z" ]; body = member "x" "r" })

let test_calculus_selection () =
  (* x in r, x similar to 6 within cost 1: shifting by ±2 reaches 6 from
     4 (cost 1) and matches 6... 6 is not in r; 4 and... 10 needs 2 shifts. *)
  let q =
    {
      Calculus.head = [ "x" ];
      body =
        Calculus.And
          ( Calculus.Member { term = Calculus.Var "x"; relation = "r" },
            Calculus.Sim
              { left = Calculus.Var "x"; right = Calculus.Const 6.; bound = 1. }
          );
    }
  in
  Alcotest.(check (list (list (float 0.)))) "selection" [ [ 4. ] ] (eval_ok q)

let test_calculus_join () =
  (* Pairs (x, y) in r x s with x exactly similar at zero cost: equality. *)
  let q =
    {
      Calculus.head = [ "x"; "y" ];
      body =
        Calculus.And
          ( Calculus.Member { term = Calculus.Var "x"; relation = "r" },
            Calculus.And
              ( Calculus.Member { term = Calculus.Var "y"; relation = "s" },
                Calculus.Sim
                  { left = Calculus.Var "x"; right = Calculus.Var "y"; bound = 0. }
              ) );
    }
  in
  Alcotest.(check (list (list (float 0.)))) "join" [ [ 2.; 2. ]; [ 10.; 10. ] ]
    (eval_ok q)

let test_calculus_negation_and_or () =
  let member v r = Calculus.Member { term = Calculus.Var v; relation = r } in
  (* Members of r that are NOT within one shift of 2. *)
  let q =
    {
      Calculus.head = [ "x" ];
      body =
        Calculus.And
          ( member "x" "r",
            Calculus.Not
              (Calculus.Sim
                 { left = Calculus.Var "x"; right = Calculus.Const 2.; bound = 1. }) );
    }
  in
  Alcotest.(check (list (list (float 0.)))) "negation" [ [ 10. ] ] (eval_ok q);
  (* Union of r and s. *)
  let u =
    { Calculus.head = [ "x" ]; body = Calculus.Or (member "x" "r", member "x" "s") }
  in
  Alcotest.(check int) "union size" 5 (List.length (eval_ok u))

let test_calculus_errors () =
  let bad_rel =
    {
      Calculus.head = [ "x" ];
      body = Calculus.Member { term = Calculus.Var "x"; relation = "nope" };
    }
  in
  (match Calculus.eval ~equal:equal_f ~similar:similar_shift ~database bad_rel with
  | Error msg ->
    Alcotest.(check bool) "mentions relation" true
      (String.length msg > 0 && String.equal msg "unknown relation \"nope\"")
  | Ok _ -> Alcotest.fail "expected error");
  let unsafe =
    {
      Calculus.head = [ "x" ];
      body =
        Calculus.Sim
          { left = Calculus.Var "x"; right = Calculus.Const 1.; bound = 5. };
    }
  in
  match Calculus.eval ~equal:equal_f ~similar:similar_shift ~database unsafe with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected range-restriction error"

(* --- properties --------------------------------------------------------------- *)

let arb_float_pair =
  QCheck.make
    ~print:QCheck.Print.(pair float float)
    QCheck.Gen.(pair (float_range (-50.) 50.) (float_range (-50.) 50.))

let prop_similarity_le_d0 =
  QCheck.Test.make ~name:"Eq.10 distance <= D0" ~count:100 arb_float_pair
    (fun (x, y) ->
      let transformations = [ shift 5. ~cost:1.; shift (-3.) ~cost:0.7 ] in
      Similarity.distance ~bound:5. ~transformations ~d0 x y <= d0 x y +. 1e-9)

let prop_similarity_symmetric_for_symmetric_sets =
  QCheck.Test.make ~name:"symmetric transformation set => symmetric distance"
    ~count:100 arb_float_pair (fun (x, y) ->
      let transformations = [ shift 5. ~cost:1.; shift (-5.) ~cost:1. ] in
      let dxy = Similarity.distance ~bound:8. ~transformations ~d0 x y in
      let dyx = Similarity.distance ~bound:8. ~transformations ~d0 y x in
      Float.abs (dxy -. dyx) <= 1e-9)

let properties =
  List.map QCheck_alcotest.to_alcotest
    [ prop_similarity_le_d0; prop_similarity_symmetric_for_symmetric_sets ]

let () =
  Alcotest.run "simq_core"
    [
      ( "transformation",
        [
          Alcotest.test_case "basics" `Quick test_transformation_basics;
          Alcotest.test_case "compose" `Quick test_transformation_compose;
          Alcotest.test_case "validation" `Quick test_transformation_validation;
        ] );
      ( "pattern",
        [
          Alcotest.test_case "matches" `Quick test_pattern_matches;
          Alcotest.test_case "denotation" `Quick test_pattern_denotation;
          Alcotest.test_case "is_constant" `Quick test_pattern_is_constant;
        ] );
      ( "similarity",
        [
          Alcotest.test_case "no transformations" `Quick
            test_similarity_no_transformations;
          Alcotest.test_case "one side" `Quick test_similarity_one_side;
          Alcotest.test_case "repeated and both sides" `Quick
            test_similarity_repeated_and_both_sides;
          Alcotest.test_case "never exceeds D0" `Quick
            test_similarity_never_exceeds_d0;
          Alcotest.test_case "respects bound" `Quick test_similarity_respects_bound;
          Alcotest.test_case "budget exceeded" `Quick test_similarity_budget;
          Alcotest.test_case "similar predicate" `Quick test_similar_predicate;
          Alcotest.test_case "witness two steps" `Quick
            test_similarity_witness_two_steps;
        ] );
      ( "calculus",
        [
          Alcotest.test_case "free and bound variables" `Quick
            test_calculus_free_and_bound;
          Alcotest.test_case "range restriction" `Quick
            test_calculus_range_restriction;
          Alcotest.test_case "selection" `Quick test_calculus_selection;
          Alcotest.test_case "join" `Quick test_calculus_join;
          Alcotest.test_case "negation and union" `Quick
            test_calculus_negation_and_or;
          Alcotest.test_case "errors" `Quick test_calculus_errors;
        ] );
      ( "eval",
        [
          Alcotest.test_case "range" `Quick test_eval_range;
          Alcotest.test_case "range with transform" `Quick
            test_eval_range_with_transform;
          Alcotest.test_case "range with pattern" `Quick test_eval_range_pattern;
          Alcotest.test_case "all pairs" `Quick test_eval_all_pairs;
          Alcotest.test_case "nearest" `Quick test_eval_nearest;
          Alcotest.test_case "similar set" `Quick test_eval_similar_set;
        ] );
      ("properties", properties);
    ]
