open Simq_rewrite

let lev = Rule.levenshtein

(* Reference Levenshtein for cross-validation. *)
let reference_levenshtein a b =
  let n = String.length a and m = String.length b in
  let d = Array.make_matrix (n + 1) (m + 1) 0 in
  for i = 0 to n do
    d.(i).(0) <- i
  done;
  for j = 0 to m do
    d.(0).(j) <- j
  done;
  for i = 1 to n do
    for j = 1 to m do
      let sub = if a.[i - 1] = b.[j - 1] then 0 else 1 in
      d.(i).(j) <-
        min
          (min (d.(i - 1).(j) + 1) (d.(i).(j - 1) + 1))
          (d.(i - 1).(j - 1) + sub)
    done
  done;
  d.(n).(m)

(* --- Rule ----------------------------------------------------------------- *)

let test_rule_validation () =
  Alcotest.check_raises "negative cost"
    (Invalid_argument "Rule.delete_any: cost must be finite and non-negative")
    (fun () -> ignore (Rule.delete_any ~cost:(-1.)));
  Alcotest.check_raises "no-op" (Invalid_argument "Rule.rewrite: lhs = rhs is a no-op")
    (fun () -> ignore (Rule.rewrite ~lhs:"ab" ~rhs:"ab" ~cost:1.));
  Alcotest.check_raises "both empty"
    (Invalid_argument "Rule.rewrite: both sides empty") (fun () ->
      ignore (Rule.rewrite ~lhs:"" ~rhs:"" ~cost:1.))

let test_rule_helpers () =
  let rules =
    [
      Rule.rewrite ~lhs:"a" ~rhs:"xyz" ~cost:2.;
      Rule.delete_any ~cost:0.5;
    ]
  in
  Alcotest.(check int) "max growth" 2 (Rule.max_growth rules);
  Alcotest.(check (float 0.)) "min cost" 0.5 (Rule.min_cost rules)

(* --- Gen_edit -------------------------------------------------------------- *)

let test_levenshtein_known_values () =
  List.iter
    (fun (a, b, expected) ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "%s -> %s" a b)
        (float_of_int expected)
        (Gen_edit.distance ~rules:lev a b))
    [
      ("kitten", "sitting", 3);
      ("flaw", "lawn", 2);
      ("", "abc", 3);
      ("abc", "", 3);
      ("same", "same", 0);
      ("a", "b", 1);
    ]

let test_levenshtein_matches_reference () =
  let state = Random.State.make [| 13 |] in
  let random_string () =
    String.init (Random.State.int state 12) (fun _ ->
        Char.chr (Char.code 'a' + Random.State.int state 4))
  in
  for _ = 1 to 200 do
    let a = random_string () and b = random_string () in
    Alcotest.(check (float 1e-9))
      (Printf.sprintf "%S vs %S" a b)
      (float_of_int (reference_levenshtein a b))
      (Gen_edit.distance ~rules:lev a b)
  done

let test_custom_rules_phonetic () =
  (* "ph" -> "f" at low cost makes photo/foto near. *)
  let rules = Rule.rewrite ~lhs:"ph" ~rhs:"f" ~cost:0.2 :: lev in
  Alcotest.(check (float 1e-9)) "photo/foto" 0.2
    (Gen_edit.distance ~rules "photo" "foto");
  (* Without the special rule the cost is 2 (delete p + substitute h->f,
     or similar). *)
  Alcotest.(check (float 1e-9)) "plain cost" 2.
    (Gen_edit.distance ~rules:lev "photo" "foto")

let test_rules_only_unreachable () =
  (* A single rewrite rule cannot produce arbitrary targets: distance is
     infinite when no decomposition exists. *)
  let rules = [ Rule.rewrite ~lhs:"ab" ~rhs:"x" ~cost:1. ] in
  Alcotest.(check bool) "reachable" true
    (Float.is_finite (Gen_edit.distance ~rules "abab" "xx"));
  Alcotest.(check bool) "unreachable" false
    (Float.is_finite (Gen_edit.distance ~rules "abab" "yy"));
  Alcotest.(check (float 1e-9)) "two applications" 2.
    (Gen_edit.distance ~rules "abab" "xx")

let test_distance_bounded () =
  Alcotest.(check (option (float 1e-9))) "within bound" (Some 3.)
    (Gen_edit.distance_bounded ~rules:lev ~bound:3. "kitten" "sitting");
  Alcotest.(check (option (float 1e-9))) "beyond bound" None
    (Gen_edit.distance_bounded ~rules:lev ~bound:2.9 "kitten" "sitting")

let test_alignment_structure () =
  match Gen_edit.alignment ~rules:lev "kitten" "sitting" with
  | None -> Alcotest.fail "alignment expected"
  | Some (cost, steps) ->
    Alcotest.(check (float 1e-9)) "cost" 3. cost;
    (* The steps must replay x into y. *)
    let consumed = Buffer.create 8 and produced = Buffer.create 8 in
    let applied_cost = ref 0. in
    List.iter
      (fun step ->
        match step with
        | Gen_edit.Copy c ->
          Buffer.add_char consumed c;
          Buffer.add_char produced c
        | Gen_edit.Applied { rule; consumed = c; produced = p } ->
          applied_cost := !applied_cost +. Rule.cost rule;
          Buffer.add_string consumed c;
          Buffer.add_string produced p)
      steps;
    Alcotest.(check string) "consumes x" "kitten" (Buffer.contents consumed);
    Alcotest.(check string) "produces y" "sitting" (Buffer.contents produced);
    Alcotest.(check (float 1e-9)) "step costs add up" cost !applied_cost

let test_alignment_none_when_unreachable () =
  let rules = [ Rule.rewrite ~lhs:"a" ~rhs:"b" ~cost:1. ] in
  Alcotest.(check bool) "none" true
    (Option.is_none (Gen_edit.alignment ~rules "aa" "cc"))

let test_empty_rules_rejected () =
  Alcotest.check_raises "empty rules" (Invalid_argument "Gen_edit: empty rule list")
    (fun () -> ignore (Gen_edit.distance ~rules:[] "a" "b"))

(* --- Search (cascading) ----------------------------------------------------- *)

let test_search_direct () =
  let rules = [ Rule.rewrite ~lhs:"a" ~rhs:"b" ~cost:1. ] in
  match Search.min_cost ~rules ~bound:5. "aa" "bb" with
  | Some (cost, derivation) ->
    Alcotest.(check (float 1e-9)) "cost" 2. cost;
    Alcotest.(check string) "starts at x" "aa" (List.hd derivation);
    Alcotest.(check string) "ends at y" "bb"
      (List.nth derivation (List.length derivation - 1))
  | None -> Alcotest.fail "expected a derivation"

let test_search_cascading_beats_dp () =
  (* a -> b then b -> c lets "a" reach "c" by cascading; the
     non-cascading DP cannot rewrite the freshly produced b. *)
  let rules =
    [
      Rule.rewrite ~lhs:"a" ~rhs:"b" ~cost:1.;
      Rule.rewrite ~lhs:"b" ~rhs:"c" ~cost:1.;
    ]
  in
  Alcotest.(check bool) "DP unreachable" false
    (Float.is_finite (Gen_edit.distance ~rules "a" "c"));
  match Search.min_cost ~rules ~bound:5. "a" "c" with
  | Some (cost, derivation) ->
    Alcotest.(check (float 1e-9)) "cascade cost" 2. cost;
    Alcotest.(check (list string)) "derivation" [ "a"; "b"; "c" ] derivation
  | None -> Alcotest.fail "cascade expected"

let test_search_respects_bound () =
  let rules = [ Rule.rewrite ~lhs:"a" ~rhs:"b" ~cost:1. ] in
  Alcotest.(check bool) "bound too small" true
    (Option.is_none (Search.min_cost ~rules ~bound:1.5 "aa" "bb"))

let test_search_identity () =
  let rules = lev in
  match Search.min_cost ~rules ~bound:0. "abc" "abc" with
  | Some (cost, [ "abc" ]) -> Alcotest.(check (float 0.)) "zero" 0. cost
  | _ -> Alcotest.fail "identity should cost zero"

let test_search_rejects_zero_costs () =
  let rules = [ Rule.rewrite ~lhs:"a" ~rhs:"b" ~cost:0. ] in
  Alcotest.check_raises "zero cost"
    (Invalid_argument "Search.min_cost: cascading search requires positive costs")
    (fun () -> ignore (Search.min_cost ~rules ~bound:1. "a" "b"))

let test_search_budget () =
  (* A tiny state budget on a large problem must raise, not return None. *)
  let rules = lev in
  try
    ignore
      (Search.min_cost ~max_states:3 ~rules ~bound:50. "aaaaaaaa" "bbbbbbbb");
    Alcotest.fail "expected Budget_exceeded"
  with Search.Budget_exceeded -> ()

(* --- properties -------------------------------------------------------------- *)

let arb_string =
  QCheck.make
    ~print:(fun s -> s)
    QCheck.Gen.(
      let* n = int_range 0 10 in
      string_size ~gen:(char_range 'a' 'd') (return n))

let prop_dp_symmetric_on_symmetric_rules =
  QCheck.Test.make ~name:"symmetric rule set gives symmetric distance"
    ~count:200 (QCheck.pair arb_string arb_string) (fun (a, b) ->
      let d1 = Gen_edit.distance ~rules:lev a b in
      let d2 = Gen_edit.distance ~rules:lev b a in
      Float.abs (d1 -. d2) <= 1e-9)

let prop_dp_triangle =
  QCheck.Test.make ~name:"levenshtein triangle inequality" ~count:200
    (QCheck.triple arb_string arb_string arb_string) (fun (a, b, c) ->
      Gen_edit.distance ~rules:lev a c
      <= Gen_edit.distance ~rules:lev a b +. Gen_edit.distance ~rules:lev b c +. 1e-9)

let prop_search_not_worse_than_dp =
  (* Every non-cascading derivation is a cascade, so the search (given a
     generous bound) never reports a higher cost than the DP. Kept tiny:
     the cascading state space explodes quickly. *)
  QCheck.Test.make ~name:"cascading search <= non-cascading DP" ~count:25
    (QCheck.pair arb_string arb_string) (fun (a, b) ->
      QCheck.assume (String.length a <= 4 && String.length b <= 4);
      let dp = Gen_edit.distance ~rules:lev a b in
      QCheck.assume (Float.is_finite dp && dp <= 3.);
      match Search.min_cost ~max_states:500_000 ~rules:lev ~bound:dp a b with
      | Some (cost, _) -> cost <= dp +. 1e-9
      | None -> false
      | exception Search.Budget_exceeded -> QCheck.assume_fail ())

let properties =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_dp_symmetric_on_symmetric_rules;
      prop_dp_triangle;
      prop_search_not_worse_than_dp;
    ]

let () =
  Alcotest.run "simq_rewrite"
    [
      ( "rule",
        [
          Alcotest.test_case "validation" `Quick test_rule_validation;
          Alcotest.test_case "helpers" `Quick test_rule_helpers;
        ] );
      ( "gen_edit",
        [
          Alcotest.test_case "known Levenshtein values" `Quick
            test_levenshtein_known_values;
          Alcotest.test_case "matches reference implementation" `Quick
            test_levenshtein_matches_reference;
          Alcotest.test_case "phonetic rules" `Quick test_custom_rules_phonetic;
          Alcotest.test_case "unreachable targets" `Quick
            test_rules_only_unreachable;
          Alcotest.test_case "bounded distance" `Quick test_distance_bounded;
          Alcotest.test_case "alignment replays x into y" `Quick
            test_alignment_structure;
          Alcotest.test_case "alignment none when unreachable" `Quick
            test_alignment_none_when_unreachable;
          Alcotest.test_case "empty rules rejected" `Quick
            test_empty_rules_rejected;
        ] );
      ( "search",
        [
          Alcotest.test_case "direct rewrite" `Quick test_search_direct;
          Alcotest.test_case "cascading beats DP" `Quick
            test_search_cascading_beats_dp;
          Alcotest.test_case "respects bound" `Quick test_search_respects_bound;
          Alcotest.test_case "identity" `Quick test_search_identity;
          Alcotest.test_case "rejects zero costs" `Quick
            test_search_rejects_zero_costs;
          Alcotest.test_case "budget exceeded raises" `Quick test_search_budget;
        ] );
      ("properties", properties);
    ]
