(* Stock data analysis: reproduces the narrative of Section 2
   (Examples 2.1-2.3) on synthetic stock-like data, since the paper's
   FTP data set is no longer available.

   Example 2.1 — two stocks at different price levels and volatilities
   turn out similar after shifting (mean), scaling (std) and smoothing.
   Example 2.2 — a pair with opposite movements is found by reversing
   one side.
   Example 2.3 — genuinely unrelated stocks stay distant no matter how
   often they are smoothed.

   Run with: dune exec examples/stock_analysis.exe *)

module Series = Simq_series.Series
module Distance = Simq_series.Distance
module Normal_form = Simq_series.Normal_form
module Stats = Simq_series.Stats
module Ma = Simq_series.Moving_average
module Window = Simq_dsp.Window
module Stocklike = Simq_workload.Stocklike

let smooth20 = Ma.circular (Window.uniform 20)

let section title = Printf.printf "\n== %s ==\n" title

let describe name s =
  Printf.printf "%-4s mean %7.2f  std %6.3f\n" name (Stats.mean s) (Stats.std s)

let () =
  section "Example 2.1: shift, scale, then smooth";
  (* Correlated pair, then one side rescaled to a different price level
     and volatility - the BBA/ZTR situation. *)
  let state = Random.State.make [| 21 |] in
  let a, b0 = Stocklike.correlated_pair state ~n:128 ~rho:0.9 in
  let b = Series.shift 1.0 (Series.scale 0.1 b0) in
  describe "A" a;
  describe "B" b;
  Printf.printf "raw:                 D = %7.2f\n" (Distance.euclidean a b);
  let shift s = Series.shift (-.Stats.mean s) s in
  Printf.printf "means shifted to 0:  D = %7.2f\n"
    (Distance.euclidean (shift a) (shift b));
  let na = Normal_form.normalise a and nb = Normal_form.normalise b in
  Printf.printf "normal forms:        D = %7.2f\n" (Distance.euclidean na nb);
  Printf.printf "20-day mov. average: D = %7.2f\n"
    (Distance.euclidean (smooth20 na) (smooth20 nb));

  section "Example 2.2: reversal finds opposite movements";
  let state = Random.State.make [| 22 |] in
  let c, v = Stocklike.correlated_pair state ~n:128 ~rho:(-0.9) in
  let nc = Normal_form.normalise c and nv = Normal_form.normalise v in
  Printf.printf "raw:                             D = %7.2f\n"
    (Distance.euclidean c v);
  Printf.printf "normal forms:                    D = %7.2f\n"
    (Distance.euclidean nc nv);
  let reversed = Series.reverse_sign nv in
  Printf.printf "one side reversed:               D = %7.2f\n"
    (Distance.euclidean nc reversed);
  Printf.printf "reversed + 20-day mov. averages: D = %7.2f\n"
    (Distance.euclidean (smooth20 nc) (smooth20 reversed));

  section "Example 2.3: dissimilar series stay dissimilar";
  let state = Random.State.make [| 23 |] in
  let d = Stocklike.generate state ~n:128 in
  let m = Stocklike.generate state ~n:128 in
  let nd = ref (Normal_form.normalise d) and nm = ref (Normal_form.normalise m) in
  Printf.printf "normal forms: D = %.2f\n" (Distance.euclidean !nd !nm);
  for round = 1 to 10 do
    nd := smooth20 !nd;
    nm := smooth20 !nm;
    if round <= 3 || round = 10 then
      Printf.printf "after %2d x 20-day moving average: D = %.2f\n" round
        (Distance.euclidean !nd !nm)
  done;
  print_endline
    "(each smoothing shrinks the distance a little, but unrelated trends\n\
    \ never become close - which is why transformation costs are bounded)"
