(* Dictionary search: the string instantiation of the framework. The
   transformation rule language is a set of rewrite rules with costs;
   similarity is the minimum-cost reduction. A BK-tree indexes the
   unit-cost edit distance, a VP-tree the weighted rule distance, and
   custom rules ("ph" -> "f" cheap, etc.) encode domain knowledge the
   plain edit distance lacks.

   Run with: dune exec examples/dictionary_search.exe *)

open Simq_rewrite
open Simq_metric

let dictionary =
  [|
    "fonetic"; "phonetic"; "photograph"; "fotograf"; "telephone"; "telefon";
    "graph"; "graft"; "craft"; "photon"; "proton"; "piano"; "pianist";
    "physics"; "fysics"; "fissure"; "phrase"; "frays"; "phase"; "face";
    "elephant"; "elegant"; "relevant"; "reverent"; "filter"; "philter";
  |]

let int_edit a b =
  int_of_float (Gen_edit.distance ~rules:Rule.levenshtein a b)

(* Phonetic rules: classic edits cost 1, but common sound-alike
   rewrites are much cheaper. *)
let phonetic_rules =
  Rule.rewrite ~lhs:"ph" ~rhs:"f" ~cost:0.2
  :: Rule.rewrite ~lhs:"f" ~rhs:"ph" ~cost:0.2
  :: Rule.rewrite ~lhs:"c" ~rhs:"k" ~cost:0.3
  :: Rule.rewrite ~lhs:"k" ~rhs:"c" ~cost:0.3
  :: Rule.rewrite ~lhs:"ys" ~rhs:"is" ~cost:0.3
  :: Rule.rewrite ~lhs:"is" ~rhs:"ys" ~cost:0.3
  :: Rule.levenshtein

let phonetic_distance a b = Gen_edit.distance ~rules:phonetic_rules a b

let () =
  print_endline "== unit-cost edit distance via a BK-tree ==";
  let bk = Bk_tree.of_array ~dist:int_edit dictionary in
  List.iter
    (fun (query, radius) ->
      let hits = Bk_tree.range bk ~query ~radius in
      Printf.printf "  %-10s (radius %d): %s\n" query radius
        (String.concat ", "
           (List.map
              (fun (w, d) -> Printf.sprintf "%s@%d" w d)
              (List.sort (fun (_, d1) (_, d2) -> compare d1 d2) hits))))
    [ ("fase", 1); ("grapf", 1); ("pianno", 1) ];

  print_endline "\n== phonetic rule set via a VP-tree ==";
  Printf.printf "  rule set: %s\n"
    (String.concat "; "
       (List.filter_map
          (fun r ->
            match r with
            | Rule.Rewrite _ -> Some (Format.asprintf "%a" Rule.pp r)
            | _ -> None)
          phonetic_rules));
  (* The weighted distance is still a metric for this symmetric rule set;
     verify before trusting the VP-tree. *)
  let sample = Array.sub dictionary 0 10 in
  (match Metric.check_axioms phonetic_distance sample with
  | [] -> print_endline "  (metric axioms verified on a sample)"
  | violations ->
    Printf.printf "  WARNING: %s\n" (String.concat ", " violations));
  let vp = Vp_tree.build ~dist:phonetic_distance dictionary in
  List.iter
    (fun query ->
      let hits = Vp_tree.nearest vp ~query ~k:3 in
      Printf.printf "  %-10s -> %s\n" query
        (String.concat ", "
           (List.map (fun (w, d) -> Printf.sprintf "%s@%.1f" w d) hits)))
    [ "fonetik"; "photograph"; "fisics" ];

  print_endline "\n== the derivation behind one match ==";
  (match Gen_edit.alignment ~rules:phonetic_rules "fisics" "physics" with
  | Some (cost, steps) ->
    Printf.printf "  fisics -> physics at cost %.2f:\n" cost;
    List.iter
      (fun step -> Printf.printf "    %s\n" (Format.asprintf "%a" Gen_edit.pp_step step))
      steps
  | None -> print_endline "  unreachable");

  print_endline "\n== cascading rewrites (the general semantics) ==";
  (* a -> b -> c chains are invisible to the one-pass distance but found
     by the bounded search. *)
  let rules =
    [
      Rule.rewrite ~lhs:"ph" ~rhs:"f" ~cost:0.5;
      Rule.rewrite ~lhs:"f" ~rhs:"v" ~cost:0.5;
    ]
  in
  Printf.printf "  one-pass distance phase->vase: %s\n"
    (let d = Gen_edit.distance ~rules "phase" "vase" in
     if Float.is_finite d then Printf.sprintf "%.1f" d else "unreachable");
  match Search.min_cost ~rules ~bound:2. "phase" "vase" with
  | Some (cost, derivation) ->
    Printf.printf "  cascading search: cost %.1f via %s\n" cost
      (String.concat " -> " derivation)
  | None -> print_endline "  cascading search: unreachable"
