examples/subsequence_search.ml: Array List Printf Random Simq_series Simq_tsindex Simq_workload Subseq
