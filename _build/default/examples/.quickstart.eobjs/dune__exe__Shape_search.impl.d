examples/shape_search.ml: List Printf Shape Signature Simq_shapes
