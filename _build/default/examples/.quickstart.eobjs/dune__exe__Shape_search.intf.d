examples/shape_search.mli:
