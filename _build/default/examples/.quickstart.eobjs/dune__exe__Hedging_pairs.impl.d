examples/hedging_pairs.ml: Array Dataset Feature Kindex List Printf Random Simq_dsp Simq_series Simq_tsindex Simq_workload Spec String
