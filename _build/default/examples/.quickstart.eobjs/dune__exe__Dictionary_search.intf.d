examples/dictionary_search.mli:
