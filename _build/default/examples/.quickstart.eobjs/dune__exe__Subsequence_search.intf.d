examples/subsequence_search.mli:
