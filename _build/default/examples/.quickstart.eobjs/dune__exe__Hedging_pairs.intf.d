examples/hedging_pairs.mli:
