examples/dictionary_search.ml: Array Bk_tree Float Format Gen_edit List Metric Printf Rule Search Simq_metric Simq_rewrite String Vp_tree
