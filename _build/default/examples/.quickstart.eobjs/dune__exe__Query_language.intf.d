examples/query_language.mli:
