examples/stock_analysis.mli:
