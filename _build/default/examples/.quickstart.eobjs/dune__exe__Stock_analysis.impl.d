examples/stock_analysis.ml: Printf Random Simq_dsp Simq_series Simq_workload
