examples/query_language.ml: Array Dataset Feature Format Join Kindex List Printf Ql Random Simq_series Simq_tsindex Simq_workload
