examples/quickstart.ml: Array Dataset Format Kindex List Printf Random Seqscan Simq_dsp Simq_series Simq_tsindex Spec
