examples/quickstart.mli:
