(* Quickstart: the two motivating examples of the paper (Examples 1.1
   and 1.2) and a first index-accelerated similarity query.

   Run with: dune exec examples/quickstart.exe *)

module Series = Simq_series.Series
module Distance = Simq_series.Distance
module Fixtures = Simq_series.Fixtures
module Ma = Simq_series.Moving_average
module Warp = Simq_series.Warp
module Window = Simq_dsp.Window
open Simq_tsindex

let section title =
  Printf.printf "\n== %s ==\n" title

let () =
  section "Example 1.1: moving averages reveal similarity";
  let s1 = Fixtures.ex11_s1 and s2 = Fixtures.ex11_s2 in
  Printf.printf "s1 = %s\n" (Format.asprintf "%a" Series.pp s1);
  Printf.printf "s2 = %s\n" (Format.asprintf "%a" Series.pp s2);
  Printf.printf "raw Euclidean distance:            D(s1, s2)           = %.2f\n"
    (Distance.euclidean s1 s2);
  let w = Window.uniform 3 in
  Printf.printf "3-day moving averages:             D(ma3 s1, ma3 s2)   = %.2f\n"
    (Distance.euclidean (Ma.circular w s1) (Ma.circular w s2));

  section "Example 1.2: time warping aligns different sampling rates";
  let s = Fixtures.ex12_s and p = Fixtures.ex12_p in
  Printf.printf "s (daily)       = %s\n" (Format.asprintf "%a" Series.pp s);
  Printf.printf "p (every 2nd)   = %s\n" (Format.asprintf "%a" Series.pp p);
  let warped = Warp.expand 2 p in
  Printf.printf "warp x2 of p    = %s\n" (Format.asprintf "%a" Series.pp warped);
  Printf.printf "D(warp 2 p, s)  = %.2f\n" (Distance.euclidean warped s);

  section "A first indexed similarity query";
  (* 500 random walks; find the ones whose 8-day moving average tracks a
     perturbed copy of walk #0. *)
  let batch = Simq_series.Generator.random_walks ~seed:7 ~count:500 ~n:128 in
  let dataset = Dataset.of_series ~name:"walks" batch in
  let index = Kindex.build dataset in
  let state = Random.State.make [| 99 |] in
  let noisy =
    Array.map (fun v -> v +. Random.State.float state 2. -. 1.) batch.(0)
  in
  (* “Whose 8-day moving average tracks mine?”: the data side gets the
     transformation during the index traversal; the query side is
     smoothed here (so it is already in the comparison space —
     ~normalise_query:false keeps it verbatim). *)
  let spec = Spec.Moving_average 8 in
  let query =
    Ma.circular (Window.uniform 8) (Simq_series.Normal_form.normalise noisy)
  in
  let epsilon = 1.0 in
  let result = Kindex.range ~spec ~normalise_query:false index ~query ~epsilon in
  Printf.printf
    "query: 8-day MA within eps=%.1f of a noisy copy of walk #0\n" epsilon;
  Printf.printf "answers: %d (from %d candidates, %d node accesses)\n"
    (List.length result.Kindex.answers)
    result.Kindex.candidates result.Kindex.node_accesses;
  List.iter
    (fun ((e : Dataset.entry), d) ->
      Printf.printf "  %s  distance %.3f\n" e.Dataset.name d)
    result.Kindex.answers;

  (* The same query through the sequential-scan baseline gives the same
     answers — Lemma 1 in action. *)
  let reference =
    Seqscan.reference ~spec ~normalise_query:false dataset ~query ~epsilon
  in
  Printf.printf "sequential scan agrees: %b\n"
    (List.map (fun ((e : Dataset.entry), _) -> e.Dataset.id) reference
    = List.map
        (fun ((e : Dataset.entry), _) -> e.Dataset.id)
        result.Kindex.answers)
