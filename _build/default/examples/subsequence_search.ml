(* Subsequence search: find where a short pattern occurs inside long
   stored series — the [FRM94] extension the paper builds on (and the
   question behind Example 1.2: "the Euclidean distance between p and
   any subsequence of length four of s").

   Run with: dune exec examples/subsequence_search.exe *)

module Series = Simq_series.Series
module Stocklike = Simq_workload.Stocklike
open Simq_tsindex

let () =
  let n = 512 and window = 32 in
  let market = Stocklike.batch ~seed:44 ~count:50 ~n in
  let index = Subseq.build ~window market in
  Printf.printf
    "indexed %d sliding windows (%d series x %d days, window %d)\n"
    (Subseq.windows_indexed index)
    (Array.length market) n window;

  (* A pattern cut from the middle of series 17, with a little noise:
     where does this shape occur in the market? *)
  let state = Random.State.make [| 3 |] in
  let pattern =
    Array.map
      (fun v -> v +. Random.State.float state 0.02 -. 0.01)
      (Series.subsequence market.(17) ~pos:200 ~len:window)
  in
  let hits, candidates = Subseq.range index ~query:pattern ~epsilon:1.0 in
  Printf.printf
    "\npattern from series 17 @ 200 (eps 1.0): %d hits (%d candidates)\n"
    (List.length hits) candidates;
  List.iter
    (fun h ->
      Printf.printf "  series %2d @ %3d  distance %.3f\n" h.Subseq.series_id
        h.Subseq.offset h.Subseq.distance)
    hits;

  (* The 5 windows anywhere in the market closest to the pattern —
     overlapping offsets around the true position show up as a cluster. *)
  print_endline "\n5 nearest windows:";
  List.iter
    (fun h ->
      Printf.printf "  series %2d @ %3d  distance %.3f\n" h.Subseq.series_id
        h.Subseq.offset h.Subseq.distance)
    (Subseq.nearest index ~query:pattern ~k:5);

  (* Example 1.2's negative result: without warping, p never gets close
     to a length-4 window of s. *)
  let s = Simq_series.Fixtures.ex12_s and p = Simq_series.Fixtures.ex12_p in
  let tiny = Subseq.build ~k:2 ~window:4 [| s |] in
  (match Subseq.nearest tiny ~query:p ~k:1 with
  | [ best ] ->
    Printf.printf
      "\nExample 1.2: best length-4 window of s for p is offset %d at \
       distance %.3f (> 1.41, as the paper notes);\n\
       time warping, not subsequence matching, is the right tool there.\n"
      best.Subseq.offset best.Subseq.distance
  | _ -> ())
