(* The textual query language: parse similarity queries and run them
   against an indexed market.

   Run with: dune exec examples/query_language.exe *)

module Stocklike = Simq_workload.Stocklike
open Simq_tsindex

let run_query index queries_by_name text =
  Printf.printf "\n> %s\n" text;
  match Ql.parse text with
  | Error msg -> Printf.printf "  parse error: %s\n" msg
  | Ok q -> (
    Printf.printf "  parsed: %s\n" (Format.asprintf "%a" Ql.pp q);
    match q with
    | Ql.Range { spec; query; epsilon; mean_window; std_band; _ } -> (
      match List.assoc_opt query queries_by_name with
      | None -> Printf.printf "  unknown query series %S\n" query
      | Some series ->
        let r =
          Kindex.range ~spec ?mean_window ?std_band index ~query:series
            ~epsilon
        in
        Printf.printf "  %d answers, %d candidates, %d node accesses\n"
          (List.length r.Kindex.answers)
          r.Kindex.candidates r.Kindex.node_accesses;
        List.iter
          (fun ((e : Dataset.entry), d) ->
            Printf.printf "    %s  distance %.3f\n" e.Dataset.name d)
          r.Kindex.answers)
    | Ql.Nearest { k; spec; query; _ } -> (
      match List.assoc_opt query queries_by_name with
      | None -> Printf.printf "  unknown query series %S\n" query
      | Some series ->
        Kindex.nearest ~spec index ~query:series ~k
        |> List.iter (fun ((e : Dataset.entry), d) ->
               Printf.printf "    %s  distance %.3f\n" e.Dataset.name d))
    | Ql.Pairs { spec; epsilon; method_; _ } ->
      let result =
        match method_ with
        | Ql.Scan_full -> Join.scan_full ~spec index ~epsilon
        | Ql.Scan_early -> Join.scan_early_abandon ~spec index ~epsilon
        | Ql.Index -> Join.index_transformed ~spec index ~epsilon
      in
      Printf.printf
        "    %d pairs (%d distance computations, %d node accesses)\n"
        (List.length result.Join.pairs)
        result.Join.distance_computations result.Join.node_accesses)

let () =
  let market = Stocklike.batch ~seed:5 ~count:300 ~n:128 in
  let dataset = Dataset.of_series ~name:"stocks" market in
  let index = Kindex.build dataset in
  (* Two named query series: a noisy copy of stock 0 and stock 0 sampled
     every other day (for the warp query). *)
  let state = Random.State.make [| 1 |] in
  let noisy =
    Array.map (fun v -> v +. Random.State.float state 0.2 -. 0.1) market.(0)
  in
  (* warp(2) queries must be twice the data length (256): expand the
     64-point half-rate series by 4. *)
  let halved = Simq_series.Series.sample_every 2 market.(0) in
  let warped_query = Simq_series.Warp.expand 4 halved in
  let queries = [ ("noisy0", noisy); ("halfrate0", warped_query) ] in
  Printf.printf "market: %d stocks x 128 days, k-index with k = %d (polar)\n"
    (Dataset.cardinality dataset)
    (Kindex.config index).Feature.k;
  List.iter
    (run_query index queries)
    [
      "RANGE FROM stocks QUERY noisy0 EPS 1.0";
      "RANGE FROM stocks USING mavg(20) QUERY noisy0 EPS 0.5";
      "NEAREST 3 FROM stocks USING rev QUERY noisy0";
      "PAIRS FROM stocks USING mavg(20) EPS 1.0 METHOD index";
      "RANGE FROM stocks USING warp(2) QUERY halfrate0 EPS 8.0";
      "RANGE FROM stocks USING teleport(3) QUERY noisy0 EPS 1.0";
    ]
