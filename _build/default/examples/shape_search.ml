(* Shape similarity: the second instance of the framework's mapping
   function ("minimum bounding rectangle for shapes", Section 3). A
   small library of block letters is indexed by rectangle signature; a
   hand-drawn query letter is recognised by range search plus the exact
   symmetric-difference refinement.

   Run with: dune exec examples/shape_search.exe *)

open Simq_shapes

let b = Shape.of_boxes

let alphabet =
  [
    ("L", b [ (0., 0., 1., 4.); (0., 0., 3., 1.) ]);
    ("T", b [ (0., 3., 3., 4.); (1., 0., 2., 4.) ]);
    ("I", b [ (1., 0., 2., 4.) ]);
    ("O", b [ (0., 0., 3., 1.); (0., 3., 3., 4.); (0., 0., 1., 4.); (2., 0., 3., 4.) ]);
    ("U", b [ (0., 0., 3., 1.); (0., 0., 1., 4.); (2., 0., 3., 4.) ]);
    ("H", b [ (0., 0., 1., 4.); (2., 0., 3., 4.); (0., 1.5, 3., 2.5) ]);
    ("F", b [ (0., 0., 1., 4.); (0., 3., 3., 4.); (0., 1.5, 2., 2.5) ]);
    ("E", b [ (0., 0., 1., 4.); (0., 3., 3., 4.); (0., 1.5, 2.5, 2.5); (0., 0., 3., 1.) ]);
  ]

let () =
  let store = Signature.build alphabet in
  Printf.printf "indexed %d block letters by rectangle signature\n"
    (Signature.size store);

  (* A sloppily drawn F, twice the size, somewhere else on the canvas:
     position/size invariance comes from the shape normal form. *)
  let sketch =
    b [ (10., 10., 12.2, 18.1); (10., 16., 16.1, 18.); (10., 13., 14., 15.1) ]
  in
  print_endline "\nquery: a hand-drawn F (scaled, translated, noisy)";
  print_endline "nearest letters by signature distance:";
  List.iter
    (fun h ->
      Printf.printf "  %-2s signature distance %.3f\n" h.Signature.name
        h.Signature.signature_distance)
    (Signature.nearest store ~query:sketch ~k:3);

  let hits = Signature.range store ~query:sketch ~epsilon:0.8 in
  let refined = Signature.refine hits ~query:sketch ~max_area:0.25 in
  print_endline
    "\nafter refining with the exact symmetric-difference area (<= 0.25):";
  List.iter
    (fun ((h : Signature.hit), area) ->
      Printf.printf "  %-2s differs on %.3f of the unit square\n"
        h.Signature.name area)
    refined;

  (* The framework view: the same three-step recipe as time series —
     normalise (shape normal form), map to the md-space (signature),
     search the R*-tree, then check the full record. *)
  print_endline
    "\n(same pipeline as the time-series index: normal form -> feature\n\
    \ point -> R*-tree filter -> exact refinement on the full object)"
