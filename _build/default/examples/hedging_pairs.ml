(* Hedging pairs: find all pairs of stocks that move in opposite
   directions, by joining the market with its reversal T_rev = (-1, 0) -
   the spatial self-join the paper runs for Example 2.2 / Table 1.

   We plant a few anti-correlated pairs in a synthetic market and let the
   transformed index join recover them.

   Run with: dune exec examples/hedging_pairs.exe *)

module Series = Simq_series.Series
module Distance = Simq_series.Distance
module Normal_form = Simq_series.Normal_form
module Stocklike = Simq_workload.Stocklike
open Simq_tsindex

let () =
  let n = 128 in
  let state = Random.State.make [| 2025 |] in
  (* 120 independent stocks plus 4 planted hedging pairs. *)
  let independents = Stocklike.batch ~seed:77 ~count:120 ~n in
  let planted =
    List.init 4 (fun _ -> Stocklike.correlated_pair state ~n ~rho:(-0.985))
  in
  let market =
    Array.append independents
      (Array.of_list (List.concat_map (fun (a, b) -> [ a; b ]) planted))
  in
  let dataset = Dataset.of_series ~name:"market" market in
  let index = Kindex.build dataset in

  (* The pairs query: x joined against reversed y. We reverse the data
     side and, for every stock, search around its own (unreversed)
     features; smoothing first makes the match robust. The epsilon is
     calibrated on the planted pairs' scale. *)
  let epsilon = 1.5 in
  let smooth = Spec.Moving_average 20 in
  let entries = Dataset.entries dataset in
  let hedges = ref [] in
  Array.iter
    (fun (entry : Dataset.entry) ->
      (* Query side: the smoothed normal form of this stock. Data side:
         smoothed reversal. Matches = stocks moving opposite to it. *)
      let query_series = entry.Dataset.series in
      let smoothed_reversed (candidate : Dataset.entry) =
        Distance.euclidean
          (Spec.apply_series smooth
             (Series.reverse_sign candidate.Dataset.normal))
          (Spec.apply_series smooth (Normal_form.normalise query_series))
      in
      (* Data side transformed by smooth∘reverse. Reversal is linear, so
         D(smooth (rev x), smooth q) = D(smooth x, smooth (-q)): traverse
         with spec = smooth and use the features of smooth(-q) — the
         query's coefficients through the (negated) transfer function. *)
      let q = Dataset.prepare_query query_series in
      let k = (Kindex.config index).Feature.k in
      let transfer = Spec.stretch smooth ~n in
      let query_coeffs =
        Array.init k (fun i ->
            Simq_dsp.Cpx.neg
              (Simq_dsp.Cpx.mul transfer.(i + 1) q.Dataset.spectrum.(i + 1)))
      in
      let result =
        Kindex.range_generic ~spec:smooth index ~query_coeffs ~epsilon
          ~distance:smoothed_reversed
      in
      List.iter
        (fun ((candidate : Dataset.entry), d) ->
          if candidate.Dataset.id < entry.Dataset.id then
            hedges := (candidate.Dataset.id, entry.Dataset.id, d) :: !hedges)
        result.Kindex.answers)
    entries;

  Printf.printf "market: %d stocks x %d days; planted hedging pairs: ids %s\n"
    (Array.length market) n
    (String.concat ", "
       (List.mapi
          (fun i _ ->
            Printf.sprintf "(%d,%d)" (120 + (2 * i)) (121 + (2 * i)))
          planted));
  Printf.printf "\nfound %d opposite-movement pairs (eps = %.1f):\n"
    (List.length !hedges) epsilon;
  List.iter
    (fun (i, j, d) ->
      let planted_pair = i >= 120 && j = i + 1 && (i - 120) mod 2 = 0 in
      Printf.printf "  %s-%s  D(ma20 x, ma20 (-y)) = %.2f%s\n"
        entries.(i).Dataset.name entries.(j).Dataset.name d
        (if planted_pair then "   <- planted" else ""))
    (List.sort compare !hedges)
